//! Bench behind E8–E10: the executable lower-bound artifacts — Boolean
//! degree computation, the routing certifier, and the dense-packing
//! reduction.

use lowband_bench::harness::{BenchmarkId, Criterion};
use lowband_bench::{criterion_group, criterion_main};
use lowband_lower::gadgets::{rs_cs_gadget, us_gm_gadget};
use lowband_lower::{dense_via_as_reduction, max_foreign_values, BooleanFunction};

fn bench_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("boolfn_degree");
    for &n in &[12usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("or", n), &n, |b, &n| {
            b.iter(|| BooleanFunction::or(n).degree())
        });
    }
    group.finish();
}

fn bench_certifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_certifier");
    for &n in &[64usize, 256] {
        let g1 = us_gm_gadget(n);
        let s =
            lowband_core::compile_schedule(&g1, lowband_core::Algorithm::BoundedTriangles).unwrap();
        lowband_bench::harness::register_budget(lowband_core::budget::entries_for_observed(
            &format!("lower_bounds us_gm_gadget n={n}"),
            &g1,
            lowband_core::Algorithm::BoundedTriangles,
            s.rounds(),
            s.messages(),
            s.capacity(),
        ));
        group.bench_with_input(BenchmarkId::new("us_gm", n), &g1, |b, g| {
            b.iter(|| max_foreign_values(g))
        });
        let g2 = rs_cs_gadget(n);
        group.bench_with_input(BenchmarkId::new("rs_cs", n), &g2, |b, g| {
            b.iter(|| max_foreign_values(g))
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_packing_reduction");
    group.sample_size(10);
    for &m in &[6usize, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let r = dense_via_as_reduction(m, 9).unwrap();
                assert!(r.correct);
                r.simulated_rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_degree, bench_certifier, bench_reduction);
criterion_main!(benches);
