//! Benches for the communication substrate: edge coloring, packed routing
//! (exact vs greedy — the ablation), broadcast and convergecast.

use lowband_bench::harness::{BenchmarkId, Criterion};
use lowband_bench::{criterion_group, criterion_main};
use lowband_model::{Key, NodeId};
use lowband_routing::{
    broadcast, color_bipartite, convergecast, greedy_color_bipartite, route, route_greedy,
    RangeTask,
};

fn random_messages(n: u32, m: usize, seed: u64) -> Vec<lowband_routing::MessageSpec> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..m)
        .map(|t| {
            lowband_routing::router::msg(
                NodeId((next() % u64::from(n)) as u32),
                Key::tmp(0, t as u64),
                NodeId((next() % u64::from(n)) as u32),
                Key::tmp(1, t as u64),
            )
        })
        .collect()
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_coloring");
    for &m in &[1_000usize, 10_000] {
        let msgs = random_messages(256, m, 42);
        let edges: Vec<(u32, u32)> = msgs.iter().map(|t| (t.src.0, t.dst.0)).collect();
        group.bench_with_input(BenchmarkId::new("exact", m), &edges, |b, e| {
            b.iter(|| color_bipartite(e))
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &edges, |b, e| {
            b.iter(|| greedy_color_bipartite(e))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_compile");
    for &m in &[1_000usize, 10_000] {
        let msgs = random_messages(256, m, 7);
        group.bench_with_input(BenchmarkId::new("exact", m), &msgs, |b, msgs| {
            b.iter(|| route(256, msgs).unwrap().rounds())
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &msgs, |b, msgs| {
            b.iter(|| route_greedy(256, msgs).unwrap().rounds())
        });
    }
    group.finish();
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("trees");
    for &n in &[1_024usize, 16_384] {
        let tasks = vec![RangeTask {
            start: NodeId(0),
            len: n as u32,
            key: Key::tmp(0, 0),
        }];
        // Pin the broadcast tree under its ⌈log₂ n⌉ + 1 round bound.
        let observed = broadcast(n, &tasks).unwrap().rounds();
        lowband_bench::harness::register_budget(vec![lowband_bench::report::BudgetEntry::new(
            format!("primitives broadcast n={n}"),
            "rounds",
            "⌈log₂n⌉ + 1 [binary broadcast tree]",
            (n as f64).log2().ceil() + 1.0,
            observed as f64,
        )]);
        group.bench_with_input(BenchmarkId::new("broadcast", n), &tasks, |b, t| {
            b.iter(|| broadcast(n, t).unwrap().rounds())
        });
        group.bench_with_input(BenchmarkId::new("convergecast", n), &tasks, |b, t| {
            b.iter(|| convergecast(n, t).unwrap().rounds())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring, bench_routing, bench_trees);
criterion_main!(benches);
