//! A tiny, dependency-free stand-in for the subset of the Criterion API the
//! `benches/` directory uses, so `cargo bench` runs with no registry access.
//!
//! The interface mirrors Criterion 0.5 — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `BenchmarkId::{new, from_parameter}`, `Bencher::iter` — plus the
//! [`criterion_group!`]/[`criterion_main!`] macros, so a bench file ports by
//! changing only its `use` lines. What it does *not* do is Criterion's
//! statistics machinery: each benchmark is timed with warmup plus a fixed
//! number of wall-clock samples, and the median/min/max per-iteration times
//! are printed in a plain table.
//!
//! Command-line behaviour: any non-flag argument acts as a substring filter
//! on benchmark ids (like Criterion); `--bench`/`--quick` and other flags
//! cargo passes are accepted and ignored. `LOWBAND_BENCH_SAMPLES` overrides
//! the per-benchmark sample count.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

use crate::report::{json_mode, reservoir_section, BudgetEntry, Json, JsonReport, Reservoir};

/// Measurements collected for the `--json` artifact; drained by
/// [`write_json_records`] from the `criterion_main!`-generated `main`.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Communication-budget rows registered by the bench file itself (bounds
/// are workload knowledge the harness doesn't have); drained into the
/// artifact's `budget` section by [`write_json_records`].
static BUDGETS: Mutex<Vec<BudgetEntry>> = Mutex::new(Vec::new());

/// Register predicted-vs-observed budget rows for the artifact this bench
/// writes under `--json`. Call once from the bench function, on the same
/// workload the measurements run — every bench artifact must carry a
/// non-empty `budget` section (`validate_results` enforces it).
pub fn register_budget(entries: Vec<BudgetEntry>) {
    BUDGETS.lock().unwrap().extend(entries);
}

struct Record {
    id: String,
    samples: usize,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Every per-iteration sample in nanoseconds, for the exact
    /// `percentiles` section (sample counts are small, so no sketching).
    sample_ns: Vec<u64>,
}

/// Write `results/bench_<name>.json` with every measurement recorded so
/// far. No-op without `--json`. Called automatically by
/// [`criterion_main!`]; `name` is derived from the bench executable.
pub fn write_json_records() {
    if !json_mode() {
        return;
    }
    let records = std::mem::take(&mut *RECORDS.lock().unwrap());
    let budgets = std::mem::take(&mut *BUDGETS.lock().unwrap());
    let name = bench_name();
    let rows: Vec<Json> = records
        .iter()
        .map(|r| {
            Json::obj()
                .set("id", r.id.as_str())
                .set("samples", r.samples)
                .set("median_ns", r.median_ns)
                .set("min_ns", r.min_ns)
                .set("max_ns", r.max_ns)
        })
        .collect();
    let reservoirs: Vec<(String, Reservoir)> = records
        .iter()
        .map(|r| {
            let mut res = Reservoir::new(r.sample_ns.len());
            for &ns in &r.sample_ns {
                res.record(ns);
            }
            (r.id.clone(), res)
        })
        .collect();
    let pairs: Vec<(&str, &Reservoir)> =
        reservoirs.iter().map(|(id, r)| (id.as_str(), r)).collect();
    let mut report = JsonReport::new(format!("bench_{name}"));
    report.section("measurements", Json::Arr(rows));
    report.section("percentiles", reservoir_section(&pairs));
    report.section(
        "budget",
        crate::report::budget_section(&budgets, crate::report::DEFAULT_TOLERANCE),
    );
    report.finish();
}

/// The bench target's name: executable stem minus cargo's trailing
/// `-<metadata hash>` (e.g. `link_vs_hash-60837f…` → `link_vs_hash`).
fn bench_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Warmup budget before iteration-count calibration is trusted.
const WARMUP_TIME: Duration = Duration::from_millis(150);

/// Entry point object handed to every bench function (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        let sample_override = std::env::var("LOWBAND_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Criterion {
            filter,
            sample_override,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            header_printed: false,
        }
    }
}

/// A named benchmark id, optionally carrying a parameter (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing a prefix and sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = self.criterion.sample_override.unwrap_or(self.sample_size);
        if !self.header_printed {
            println!("\n{}", self.name);
            println!(
                "  {:<32} {:>14} {:>14} {:>14}",
                "benchmark", "median", "min", "max"
            );
            self.header_printed = true;
        }
        let mut bencher = Bencher {
            samples,
            times: Vec::new(),
        };
        f(&mut bencher);
        let mut times = bencher.times;
        if times.is_empty() {
            println!("  {:<32} {:>14}", id.id, "no measurements");
            return self;
        }
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "  {:<32} {:>14} {:>14} {:>14}",
            id.id,
            format_time(median),
            format_time(times[0]),
            format_time(times[times.len() - 1]),
        );
        if json_mode() {
            RECORDS.lock().unwrap().push(Record {
                id: full,
                samples: times.len(),
                median_ns: median.as_nanos() as u64,
                min_ns: times[0].as_nanos() as u64,
                max_ns: times[times.len() - 1].as_nanos() as u64,
                sample_ns: times.iter().map(|t| t.as_nanos() as u64).collect(),
            });
        }
        self
    }

    /// Run a benchmark over an explicit input (the input is just forwarded;
    /// the point of the signature is source compatibility).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Timing driver passed to each benchmark closure (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations, one entry per measured sample.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, discarding its output via [`black_box`]. Calibrates an
    /// iteration count so each sample runs for roughly
    /// [`TARGET_SAMPLE_TIME`], then records `self.samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: run until the warmup budget is spent,
        // doubling the batch size while a batch is too fast to time well.
        let mut batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed < TARGET_SAMPLE_TIME {
                batch = batch.saturating_mul(2);
            } else if warmup_start.elapsed() >= WARMUP_TIME {
                break;
            }
            if warmup_start.elapsed() >= WARMUP_TIME && elapsed >= TARGET_SAMPLE_TIME / 4 {
                break;
            }
        }
        // Measured samples.
        self.times.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.times.push(t.elapsed() / batch as u32);
        }
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect bench functions under a group name (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups (mirrors
/// `criterion::criterion_main!`), then writing the `--json` artifact if
/// requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::write_json_records();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            times: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert_eq!(b.times.len(), 5);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("exact", 1000).id, "exact/1000");
        assert_eq!(BenchmarkId::from_parameter(16).id, "16");
    }
}
