//! # `lowband-bench` — the experiment harness
//!
//! Shared helpers for the table/figure binaries (`src/bin/table*.rs`,
//! `figure1.rs`, `experiments.rs`) and the Criterion benches (`benches/`).
//! Every workload here is seeded and deterministic; the binaries print the
//! rows recorded in `EXPERIMENTS.md`.

use lowband_core::{Instance, TriangleSet};
use lowband_matrix::{gen, Support};
use rand::SeedableRng;

pub mod harness;
pub mod report;

/// Least-squares fit of `log y = e·log x + c`; returns `Some((e, exp(c)))`.
///
/// The measured-exponent column of Table 1 and the §1.2 figure come from
/// this fit over a `d` sweep. Degenerate points (`x ≤ 0` or `y ≤ 0`, where
/// the logarithm is undefined) are skipped rather than clamped — clamping
/// `y` to 1 silently flattened small-round measurements and biased the
/// fitted exponent low. Returns `None` when fewer than two usable points
/// remain, or when all usable points share one `x` (slope undefined).
pub fn fit_exponent(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-12 {
        return None;
    }
    let e = (n * sxy - sx * sy) / det;
    let c = (sy - e * sx) / n;
    Some((e, c.exp()))
}

/// The extremal `[US:US:US]` workload: block-diagonal dense `d × d`
/// clusters — `d²` triangles per node (the Lemma 4.3 maximum), all of them
/// clustered. `n = blocks · d`.
pub fn block_workload(blocks: usize, d: usize) -> Instance {
    let n = blocks * d;
    let s = gen::block_diagonal(n, d);
    Instance::new(s.clone(), s.clone(), s)
}

/// A scattered `[US:US:US]` workload: random unions of permutations, few
/// triangles, no extractable clusters.
pub fn scattered_workload(n: usize, d: usize, seed: u64) -> Instance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Instance::new(
        gen::uniform_sparse(n, d, &mut rng),
        gen::uniform_sparse(n, d, &mut rng),
        gen::uniform_sparse(n, d, &mut rng),
    )
}

/// A mixed workload: dense blocks plus scattered background, `X̂`
/// average-sparse — the general `[US:US:AS]` setting of Theorem 4.2.
pub fn mixed_workload(blocks: usize, d: usize, seed: u64) -> Instance {
    let n = blocks * d;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let extra = 2.min(d);
    let ahat = gen::block_diagonal(n, d).union(&gen::uniform_sparse(n, extra, &mut rng));
    let bhat = gen::block_diagonal(n, d).union(&gen::uniform_sparse(n, extra, &mut rng));
    let xhat = gen::block_diagonal(n, d).union(&gen::average_sparse(n, extra, &mut rng));
    Instance::new(ahat, bhat, xhat)
}

/// `[US:AS:GM]` workload (Theorem 5.3): uniform × average with everything
/// of interest.
pub fn us_as_gm_workload(n: usize, d: usize, seed: u64) -> Instance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Instance::balanced(
        gen::uniform_sparse(n, d, &mut rng),
        gen::average_sparse(n, d, &mut rng),
        Support::full(n, n),
    )
}

/// `[BD:AS:AS]` workload (Theorem 5.11).
pub fn bd_as_as_workload(n: usize, d: usize, seed: u64) -> Instance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Instance::balanced(
        gen::bounded_degeneracy(n, d, &mut rng),
        gen::average_sparse(n, d, &mut rng),
        gen::average_sparse(n, d, &mut rng),
    )
}

/// Round count of one Lemma 3.1 invocation on an instance (compile only —
/// round counts are a property of the schedule, not of the values).
pub fn lemma31_rounds(inst: &Instance, kappa_override: Option<usize>) -> usize {
    let ts = TriangleSet::enumerate(inst);
    let kappa = kappa_override.unwrap_or_else(|| ts.kappa(inst.n));
    lowband_core::lemma31::process_triangles(inst, &ts.triangles, kappa, 0)
        .expect("schedule compiles")
        .rounds()
}

/// Markdown-ish table printer used by all binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Start a table with the given column headers (widths inferred).
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        assert_eq!(headers.len(), widths.len());
        let cells: Vec<String> = headers
            .iter()
            .zip(widths)
            .map(|(h, &w)| format!("{h:>w$}"))
            .collect();
        println!("| {} |", cells.join(" | "));
        let seps: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        println!("|-{}-|", seps.join("-|-"));
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        let formatted: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", formatted.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_exponent() {
        let points: Vec<(f64, f64)> = [2.0f64, 4.0, 8.0, 16.0]
            .iter()
            .map(|&d| (d, 3.0 * d.powf(1.5)))
            .collect();
        let (e, c) = fit_exponent(&points).expect("clean points fit");
        assert!((e - 1.5).abs() < 1e-9, "exponent {e}");
        assert!((c - 3.0).abs() < 1e-6, "constant {c}");
    }

    #[test]
    fn fit_skips_degenerate_points() {
        // A zero-round measurement used to be clamped to y=1 and drag the
        // slope down; now it is skipped and the clean points fit exactly.
        let points = [
            (2.0, 0.0),
            (4.0, 4.0 * 4.0),
            (8.0, 8.0 * 8.0),
            (16.0, 16.0 * 16.0),
        ];
        let (e, c) = fit_exponent(&points).expect("three clean points remain");
        assert!((e - 2.0).abs() < 1e-9, "exponent {e}");
        assert!((c - 1.0).abs() < 1e-6, "constant {c}");
    }

    #[test]
    fn fit_rejects_underdetermined_inputs() {
        assert_eq!(fit_exponent(&[]), None);
        assert_eq!(fit_exponent(&[(2.0, 8.0)]), None);
        // Two points but only one survives the degeneracy filter.
        assert_eq!(fit_exponent(&[(2.0, 8.0), (4.0, 0.0)]), None);
        // All points share one x: the slope is undefined.
        assert_eq!(fit_exponent(&[(2.0, 8.0), (2.0, 16.0)]), None);
    }

    #[test]
    fn workloads_have_expected_shapes() {
        let block = block_workload(4, 8);
        assert_eq!(block.n, 32);
        let ts = TriangleSet::enumerate(&block);
        assert_eq!(ts.len(), 4 * 8 * 8 * 8, "d³ per block");

        let scattered = scattered_workload(64, 4, 1);
        let ts = TriangleSet::enumerate(&scattered);
        assert!(
            ts.len() < 4 * 4 * 64 / 2,
            "scattered pools are triangle-poor"
        );
    }

    #[test]
    fn lemma31_rounds_positive_on_nonempty() {
        let inst = block_workload(4, 4);
        assert!(lemma31_rounds(&inst, None) > 0);
    }
}
