//! Regenerate **Table 2** — the near-complete classification — and validate
//! every band empirically: measured upper bounds from live simulation,
//! lower bounds from the executable certificates.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin table2 [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/table2.json`.

use lowband_bench::report::{
    budget_section, format_rate, percentiles_section, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{bd_as_as_workload, mixed_workload, us_as_gm_workload, TablePrinter};
use lowband_core::budget::entries_for_report;
use lowband_core::classify::{all_multisets, classify, Band};
use lowband_core::densemm::DenseEngine;
use lowband_core::{run_algorithm_traced, Algorithm};
use lowband_lower::gadgets::{rs_cs_gadget, us_gm_gadget};
use lowband_lower::{
    broadcast_lower_bound, broadcast_upper_bound, dense_via_as_reduction, max_foreign_values,
};
use lowband_matrix::Fp;
use lowband_model::trace::MetricsRegistry;

fn main() {
    let mut artifact = JsonReport::new("table2");
    // One registry observes every executed run in this binary; one budget
    // row pair (rounds, messages) per run.
    let mut metrics = MetricsRegistry::new();
    let mut budget = Vec::new();
    println!("# Table 2 — classification of sparse matrix multiplication tasks\n");
    let t = TablePrinter::new(
        &["task", "band", "upper bound", "lower bound"],
        &[14, 12, 16, 28],
    );
    for ms in all_multisets() {
        let c = classify(ms);
        let band = match c.band {
            Band::Fast => "fast",
            Band::General => "general",
            Band::Outlier => "outlier",
            Band::RootN => "√n-hard",
            Band::Conditional => "conditional",
            Band::Open => "open",
        };
        artifact.section(
            "classification",
            Json::Arr(vec![Json::obj()
                .set("task", format!("[{}:{}:{}]", ms[0], ms[1], ms[2]))
                .set("band", band)
                .set("upper_bound", c.upper_bound())
                .set("lower_bound", c.lower_bound())]),
        );
        t.row(&[
            format!("[{}:{}:{}]", ms[0], ms[1], ms[2]),
            band.into(),
            c.upper_bound().into(),
            c.lower_bound().into(),
        ]);
    }

    // ---- Band 1: fast ------------------------------------------------------
    println!("\n## Band 1 (fast): [US:US:AS] via Theorem 4.2, verified run\n");
    let d = 8;
    let inst = mixed_workload(8, d, 7);
    let band1_algorithm = Algorithm::TwoPhase {
        d: d + 2,
        engine: DenseEngine::Cube3d,
    };
    let report =
        run_algorithm_traced::<Fp, _>(&inst, band1_algorithm, 11, false, &mut metrics).unwrap();
    budget.extend(entries_for_report(
        "band1 [US:US:AS] two-phase",
        &inst,
        band1_algorithm,
        &report,
    ));
    println!(
        "n = {}, d = {}: {} rounds, {} messages, verified = {}, throughput = {}",
        inst.n,
        d + 2,
        report.rounds,
        report.messages,
        report.correct,
        format_rate(report.events_per_sec),
    );
    assert!(report.correct);
    artifact.section(
        "band1_fast_run",
        Json::obj()
            .set("n", inst.n)
            .set("d", d + 2)
            .set("rounds", report.rounds)
            .set("messages", report.messages)
            .set("correct", report.correct)
            .set("events_per_sec", report.events_per_sec),
    );

    // ---- Band 2: general ----------------------------------------------------
    println!("\n## Band 2 (general): O(d² + log n) via Theorems 5.3 / 5.11, verified runs\n");
    let t = TablePrinter::new(
        &["task", "n", "d", "rounds", "d²+log₂n", "ratio", "ok"],
        &[12, 6, 4, 8, 10, 7, 4],
    );
    for (name, inst, d) in [
        ("[US:AS:GM]", us_as_gm_workload(64, 3, 8), 3usize),
        ("[US:AS:GM]", us_as_gm_workload(128, 3, 9), 3),
        ("[BD:AS:AS]", bd_as_as_workload(64, 3, 10), 3),
        ("[BD:AS:AS]", bd_as_as_workload(128, 3, 11), 3),
    ] {
        let report = run_algorithm_traced::<Fp, _>(
            &inst,
            Algorithm::BoundedTriangles,
            12,
            false,
            &mut metrics,
        )
        .unwrap();
        budget.extend(entries_for_report(
            &format!("band2 {name} n={}", inst.n),
            &inst,
            Algorithm::BoundedTriangles,
            &report,
        ));
        let envelope = (d * d) as f64 + (inst.n as f64).log2();
        artifact.section(
            "band2_general_runs",
            Json::Arr(vec![Json::obj()
                .set("task", name)
                .set("n", inst.n)
                .set("d", d)
                .set("rounds", report.rounds)
                .set("envelope", envelope)
                .set("correct", report.correct)
                .set("events_per_sec", report.events_per_sec)]),
        );
        t.row(&[
            name.into(),
            inst.n.to_string(),
            d.to_string(),
            report.rounds.to_string(),
            format!("{envelope:.0}"),
            format!("{:.1}", report.rounds as f64 / envelope),
            if report.correct { "yes" } else { "NO" }.into(),
        ]);
        assert!(report.correct);
    }
    println!("\nΩ(log n) side (Theorem 6.15, via Lemmas 6.5/6.13): broadcast sandwich\n");
    let t = TablePrinter::new(&["n", "LB ⌈log₃n⌉", "UB ⌈log₂n⌉"], &[8, 12, 12]);
    for n in [64usize, 1024, 65536] {
        artifact.section(
            "broadcast_sandwich",
            Json::Arr(vec![Json::obj()
                .set("n", n)
                .set("lower", broadcast_lower_bound(n))
                .set("upper", broadcast_upper_bound(n))]),
        );
        t.row(&[
            n.to_string(),
            broadcast_lower_bound(n).to_string(),
            broadcast_upper_bound(n).to_string(),
        ]);
    }

    // ---- Band 3: outlier ------------------------------------------------------
    println!("\n## Outlier [US:US:GM]: paper lists O(d⁴) trivial; measured remark (E3)\n");
    let inst = lowband_bench::us_as_gm_workload(48, 3, 13); // B is AS ⊇ US draw
    let report =
        run_algorithm_traced::<Fp, _>(&inst, Algorithm::BoundedTriangles, 14, false, &mut metrics)
            .unwrap();
    budget.extend(entries_for_report(
        "outlier [US:US:GM]",
        &inst,
        Algorithm::BoundedTriangles,
        &report,
    ));
    println!(
        "our Lemma 3.1 pipeline runs the [US:US:GM]-shaped instance in {} rounds\n\
         (κ ≤ d², verified = {}) — see EXPERIMENTS.md remark E3 on the gap to the\n\
         paper's O(d⁴) entry.",
        report.rounds, report.correct
    );
    artifact.section(
        "outlier_run",
        Json::obj()
            .set("rounds", report.rounds)
            .set("correct", report.correct),
    );

    // ---- Band 4: √n-hard ----------------------------------------------------
    println!("\n## Band 4 (√n-hard): certified foreign-value bounds (Theorem 6.27)\n");
    let t = TablePrinter::new(
        &["gadget", "n", "√n", "certificate", "measured UB"],
        &[12, 6, 6, 12, 12],
    );
    for n in [64usize, 144, 256] {
        for (name, g) in [("US×GM=GM", us_gm_gadget(n)), ("RS×CS=GM", rs_cs_gadget(n))] {
            let cert = max_foreign_values(&g);
            let ub = lowband_bench::lemma31_rounds(&g, None);
            artifact.section(
                "gadget_certificates",
                Json::Arr(vec![Json::obj()
                    .set("gadget", name)
                    .set("n", n)
                    .set("certificate", cert)
                    .set("measured_ub", ub)]),
            );
            t.row(&[
                name.into(),
                n.to_string(),
                ((n as f64).sqrt() as usize).to_string(),
                cert.to_string(),
                ub.to_string(),
            ]);
            assert!(cert >= (n as f64).sqrt() as usize);
        }
    }

    // ---- Band 5: conditional ---------------------------------------------------
    println!("\n## Band 5 (conditional): dense packing reduction (Theorem 6.19)\n");
    let t = TablePrinter::new(
        &["m", "n = m²", "T(n)", "T'(m)=m·T(n)", "m^λ (λ=4/3)", "ok"],
        &[4, 8, 8, 14, 12, 4],
    );
    for m in [4usize, 8, 12, 16] {
        let r = dense_via_as_reduction(m, 15).unwrap();
        artifact.section(
            "dense_packing",
            Json::Arr(vec![Json::obj()
                .set("m", m)
                .set("n", r.n)
                .set("inner_rounds", r.inner_rounds)
                .set("simulated_rounds", r.simulated_rounds)
                .set("correct", r.correct)]),
        );
        t.row(&[
            m.to_string(),
            r.n.to_string(),
            r.inner_rounds.to_string(),
            r.simulated_rounds.to_string(),
            format!("{:.0}", (m as f64).powf(4.0 / 3.0)),
            if r.correct { "yes" } else { "NO" }.into(),
        ]);
        assert!(r.correct);
    }
    println!(
        "\nT'(m) stays well above m^λ — consistent with Theorem 6.19: an [AS:AS:AS]\n\
         solver fast enough to push T'(m) below m^λ would be a dense-MM breakthrough."
    );

    artifact.section("percentiles", percentiles_section(&metrics));
    artifact.section("budget", budget_section(&budget, DEFAULT_TOLERANCE));
    artifact.finish();
}
