//! Recovery overhead: what fault-tolerance costs on top of a clean run.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin recovery [-- --json]
//! ```
//!
//! Two questions, one workload (Theorem 5.3 on a scattered US instance):
//!
//! 1. **Checkpoint overhead, no faults** — the resilient driver with a
//!    fault-free spec vs the plain pipeline, across checkpoint cadences.
//!    The only extra work is the periodic store snapshot, so this isolates
//!    the cost of *being ready* to recover.
//! 2. **Recovery cost under faults** — failure rates × checkpoint cadence:
//!    how many rollbacks, how many replayed rounds, and the wall-clock
//!    price, with every run verified against the sequential reference.
//!
//! With `--json`, additionally writes `results/recovery.json`.

use std::time::Instant;

use lowband_bench::report::{
    budget_section, percentiles_section, BudgetEntry, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{scattered_workload, TablePrinter};
use lowband_core::budget::entries_for_report;
use lowband_core::{run_algorithm_traced, run_resilient_traced, Algorithm, Instance, RetryPolicy};
use lowband_matrix::Fp;
use lowband_model::trace::MetricsRegistry;
use lowband_model::FaultSpec;

/// Wall-clock median of `iters` runs of `f`, in milliseconds.
fn median_ms<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut times = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

fn main() {
    let mut artifact = JsonReport::new("recovery");
    let inst = scattered_workload(128, 6, 77);
    let algorithm = Algorithm::BoundedTriangles;
    let seed = 42u64;
    let iters = 3usize;
    // One registry observes every run in this binary (clean and
    // resilient); the budget rows come from the verified clean report —
    // replays never inflate `report.report.rounds`, so Lemma 3.1's
    // envelope applies unchanged.
    let mut metrics = MetricsRegistry::new();
    let mut budget = Vec::new();

    checkpoint_overhead(
        &mut artifact,
        &inst,
        algorithm,
        seed,
        iters,
        &mut metrics,
        &mut budget,
    );
    recovery_cost(
        &mut artifact,
        &inst,
        algorithm,
        seed,
        iters,
        &mut metrics,
        &mut budget,
    );
    artifact.section("percentiles", percentiles_section(&metrics));
    artifact.section("budget", budget_section(&budget, DEFAULT_TOLERANCE));
    artifact.finish();
}

#[allow(clippy::too_many_arguments)]
fn checkpoint_overhead(
    artifact: &mut JsonReport,
    inst: &Instance,
    algorithm: Algorithm,
    seed: u64,
    iters: usize,
    metrics: &mut MetricsRegistry,
    budget: &mut Vec<BudgetEntry>,
) {
    println!("# recovery — checkpoint overhead with zero faults\n");
    let (plain_ms, plain) = median_ms(iters, || {
        run_algorithm_traced::<Fp, _>(inst, algorithm, seed, false, &mut *metrics)
            .expect("clean run")
    });
    assert!(plain.correct, "baseline must verify");
    budget.extend(entries_for_report(
        "recovery plain run",
        inst,
        algorithm,
        &plain,
    ));
    println!(
        "plain pipeline: {} rounds, {:.2} ms median of {iters}\n",
        plain.rounds, plain_ms
    );

    let t = TablePrinter::new(
        &["checkpoint every", "checkpoints", "median ms", "overhead"],
        &[16, 12, 10, 9],
    );
    for cadence in [8usize, 32, 128] {
        let policy = RetryPolicy {
            checkpoint_every: cadence,
            ..RetryPolicy::default()
        };
        let (ms, report) = median_ms(iters, || {
            run_resilient_traced::<Fp, _>(
                inst,
                algorithm,
                seed,
                &FaultSpec::none(1),
                policy,
                &mut *metrics,
            )
            .expect("fault-free resilient run")
        });
        assert!(report.report.correct, "resilient run must verify");
        assert_eq!(report.failures, 0);
        artifact.section(
            "checkpoint_overhead",
            Json::Arr(vec![Json::obj()
                .set("checkpoint_every", cadence)
                .set("checkpoints", report.checkpoints)
                .set("rounds", report.report.rounds)
                .set("plain_ms", plain_ms)
                .set("resilient_ms", ms)]),
        );
        t.row(&[
            cadence.to_string(),
            report.checkpoints.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}×", ms / plain_ms.max(1e-9)),
        ]);
    }
    println!(
        "\nthe overhead is the periodic store snapshot: denser cadences pay more,\n\
         but buy shorter replays when faults do land (next table)."
    );
}

#[allow(clippy::too_many_arguments)]
fn recovery_cost(
    artifact: &mut JsonReport,
    inst: &Instance,
    algorithm: Algorithm,
    seed: u64,
    iters: usize,
    metrics: &mut MetricsRegistry,
    budget: &mut Vec<BudgetEntry>,
) {
    println!("\n# recovery — rollback/replay cost under injected faults\n");
    let t = TablePrinter::new(
        &[
            "fault rate",
            "ckpt every",
            "injected",
            "failures",
            "replayed",
            "median ms",
            "correct",
        ],
        &[10, 10, 9, 9, 9, 10, 8],
    );
    let (mut drops, mut corruptions, mut crashes) = (0usize, 0usize, 0usize);
    for rate in [0.01f64, 0.05, 0.10] {
        for cadence in [8usize, 32] {
            let spec = FaultSpec {
                seed: 0xFA + (rate * 100.0) as u64,
                drop_rate: rate,
                corrupt_rate: rate,
                crash_rate: rate / 2.0,
            };
            let policy = RetryPolicy {
                checkpoint_every: cadence,
                max_attempts: 10_000,
                base_round_budget: 1 << 20,
            };
            let (ms, report) = median_ms(iters, || {
                run_resilient_traced::<Fp, _>(inst, algorithm, seed, &spec, policy, &mut *metrics)
                    .expect("recoverable run")
            });
            assert!(report.report.correct, "recovered run must verify");
            drops += report.stats.fault_drops;
            corruptions += report.stats.fault_corruptions;
            crashes += report.stats.fault_crashes;
            if budget
                .iter()
                .all(|e| !e.label.starts_with("recovery recovered"))
            {
                budget.extend(entries_for_report(
                    &format!("recovery recovered run rate={rate:.2} ckpt={cadence}"),
                    inst,
                    algorithm,
                    &report.report,
                ));
            }
            artifact.section(
                "recovery_cost",
                Json::Arr(vec![Json::obj()
                    .set("fault_rate", rate)
                    .set("checkpoint_every", cadence)
                    .set("injected", report.stats.faults_injected)
                    .set("drops", report.stats.fault_drops)
                    .set("corruptions", report.stats.fault_corruptions)
                    .set("crashes", report.stats.fault_crashes)
                    .set("failures", report.failures)
                    .set("replayed_rounds", report.replayed_rounds)
                    .set("rounds", report.report.rounds)
                    .set("median_ms", ms)]),
            );
            t.row(&[
                format!("{rate:.2}"),
                cadence.to_string(),
                report.stats.faults_injected.to_string(),
                report.failures.to_string(),
                report.replayed_rounds.to_string(),
                format!("{ms:.2}"),
                report.report.correct.to_string(),
            ]);
        }
    }
    // Per-kind injection totals across the whole grid: the chaos harness and
    // regression checks read these instead of re-deriving them from rates.
    artifact.section(
        "fault_kinds",
        Json::obj()
            .set("drops", drops)
            .set("corruptions", corruptions)
            .set("crashes", crashes)
            .set("total", drops + corruptions + crashes),
    );
    println!(
        "\nfault kinds across the grid: {drops} drops, {corruptions} corruptions, \
         {crashes} crashes"
    );
    println!(
        "\nreplayed rounds scale with cadence × failures: the checkpoint interval is\n\
         the replay bound per failure, the classic recovery-overhead trade-off."
    );
}
