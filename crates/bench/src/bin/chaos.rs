//! Chaos soak: supervised execution under escalating fault storms (E18).
//!
//! ```text
//! cargo run -p lowband-bench --release --bin chaos [-- --json] [--requests N] [--seed K]
//! ```
//!
//! Drives a [`lowband_serve::Supervisor`] through an escalating
//! fault-intensity ladder (clean → light → storm → max, mixing drops,
//! corruptions and crashes) × three structure classes (scattered, block,
//! mixed) × both ladder entry rungs (packed, linked), plus a
//! tight-deadline slice that forces `ServeError::DeadlineExceeded` and a
//! breaker/quarantine slice that forces open → half-open → closed
//! transitions and a quarantine → probe → readmission round trip.
//!
//! Gates, asserted here and re-checked by `validate_results`:
//!
//! * **survival rate exactly 1.0** — every request ends in a verified
//!   report or a typed error; a panic or abort would stop the soak;
//! * **served rate ≥ 0.9** — refusals come only from the breaker and
//!   tight-deadline slices;
//! * **zero incorrect products** — every `Ok` report verified, whatever
//!   rung it landed on.
//!
//! With `--json`, additionally writes `results/chaos.json` with the
//! sections `survival`, `rungs`, `breaker`, `deadline`, `fault_kinds`
//! plus the standard `percentiles` + `budget` envelope (DESIGN.md §14).

use std::time::Duration;

use lowband_bench::report::{
    budget_section, percentiles_section, BudgetEntry, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{block_workload, mixed_workload, scattered_workload, TablePrinter};
use lowband_core::budget::entries_for_report;
use lowband_core::{run_algorithm_traced, Algorithm, Instance, RetryPolicy, Rung};
use lowband_matrix::Fp;
use lowband_model::trace::MetricsRegistry;
use lowband_model::FaultSpec;
use lowband_serve::{
    BreakerState, ServeError, StructureKey, SupervisedOutcome, Supervisor, SupervisorConfig,
};

/// The escalating intensity ladder: per-round drop/corrupt/crash rates.
const INTENSITIES: &[(&str, f64, f64, f64)] = &[
    ("clean", 0.0, 0.0, 0.0),
    ("light", 0.02, 0.02, 0.01),
    ("storm", 0.15, 0.15, 0.05),
    ("max", 0.60, 0.60, 0.25),
];

/// Everything the gates and the artifact sections are computed from.
#[derive(Default)]
struct Tally {
    issued: u64,
    completed: u64,
    served: u64,
    refused: u64,
    incorrect: u64,
    rungs: [u64; 4],
    descents: u64,
    deadline_misses: u64,
    breaker_rejected: u64,
    quarantine_served: u64,
    drops: u64,
    corruptions: u64,
    crashes: u64,
}

impl Tally {
    /// Fold one supervised outcome into the running totals.
    fn absorb(&mut self, outcome: &SupervisedOutcome) {
        self.completed += 1;
        self.descents += outcome.descents as u64;
        if outcome.deadline_missed {
            self.deadline_misses += 1;
        }
        if outcome.breaker_rejected {
            self.breaker_rejected += 1;
        }
        if outcome.quarantined {
            self.quarantine_served += 1;
        }
        for f in &outcome.fault_log {
            match f.kind {
                lowband_model::faults::FaultKind::Drop => self.drops += 1,
                lowband_model::faults::FaultKind::Corrupt => self.corruptions += 1,
                lowband_model::faults::FaultKind::Crash => self.crashes += 1,
            }
        }
        match &outcome.result {
            Ok(report) => {
                self.served += 1;
                self.rungs[rung_index(report.rung)] += 1;
                if !report.correct {
                    self.incorrect += 1;
                }
            }
            Err(_) => self.refused += 1,
        }
    }

    fn survived_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.completed as f64 / self.issued as f64
    }

    fn served_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.served as f64 / self.issued as f64
    }
}

fn rung_index(rung: Rung) -> usize {
    match rung {
        Rung::Packed => 0,
        Rung::Linked => 1,
        Rung::HashMap => 2,
        Rung::Reference => 3,
    }
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The three structure classes of the soak.
fn structures(seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("scattered", scattered_workload(40, 4, seed)),
        ("block", block_workload(8, 5)),
        ("mixed", mixed_workload(8, 5, seed ^ 0x5EED)),
    ]
}

fn soak_config(start_rung: Rung) -> SupervisorConfig {
    SupervisorConfig {
        cache_capacity: 8,
        retry: RetryPolicy {
            checkpoint_every: 8,
            max_attempts: 4,
            base_round_budget: 1 << 12,
        },
        // The soak measures the ladder, not admission control: the breaker
        // never trips (its slice runs separately), quarantine stays live.
        breaker_threshold: u32::MAX,
        quarantine_threshold: 6,
        start_rung,
        ..SupervisorConfig::default()
    }
}

fn main() {
    let requests: usize = arg_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
        .max(1);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC4A0);
    let algorithm = Algorithm::BoundedTriangles;

    let mut artifact = JsonReport::new("chaos");
    let mut metrics = MetricsRegistry::new();
    let mut tally = Tally::default();
    let mut budget: Vec<BudgetEntry> = Vec::new();

    // Budget rows come from one verified fault-free run per structure
    // class — replays and degraded rungs never inflate the clean bound.
    for (name, inst) in &structures(seed) {
        let clean = run_algorithm_traced::<Fp, _>(inst, algorithm, seed, false, &mut metrics)
            .expect("fault-free baseline");
        assert!(clean.correct, "baseline must verify");
        budget.extend(entries_for_report(
            &format!("chaos clean {name}"),
            inst,
            algorithm,
            &clean,
        ));
    }

    println!("# chaos — supervised soak, {requests} request(s) per scenario, seed {seed:#x}\n");
    let t = TablePrinter::new(
        &[
            "structure",
            "entry",
            "intensity",
            "served",
            "pk/ln/hm/ref",
            "descents",
            "quarantined",
        ],
        &[10, 7, 9, 7, 13, 9, 11],
    );

    for (sname, inst) in &structures(seed) {
        for entry in [Rung::Packed, Rung::Linked] {
            let mut sup = Supervisor::new(soak_config(entry));
            for (iname, drop_rate, corrupt_rate, crash_rate) in INTENSITIES {
                let before = (
                    tally.served,
                    tally.rungs,
                    tally.descents,
                    tally.quarantine_served,
                );
                for req in 0..requests {
                    let spec = FaultSpec {
                        seed: seed
                            ^ (req as u64).wrapping_mul(0x9E37_79B9)
                            ^ (*drop_rate * 1e3) as u64,
                        drop_rate: *drop_rate,
                        corrupt_rate: *corrupt_rate,
                        crash_rate: *crash_rate,
                    };
                    tally.issued += 1;
                    let outcome = sup.run_supervised_traced::<Fp, _>(
                        inst,
                        algorithm,
                        seed.wrapping_add(req as u64),
                        false,
                        &spec,
                        None,
                        &mut metrics,
                    );
                    tally.absorb(&outcome);
                }
                let rungs: Vec<u64> = (0..4).map(|i| tally.rungs[i] - before.1[i]).collect();
                t.row(&[
                    sname.to_string(),
                    entry.as_str().to_string(),
                    iname.to_string(),
                    format!("{}/{requests}", tally.served - before.0),
                    format!("{}/{}/{}/{}", rungs[0], rungs[1], rungs[2], rungs[3]),
                    (tally.descents - before.2).to_string(),
                    (tally.quarantine_served - before.3).to_string(),
                ]);
            }
        }
    }

    let breaker = breaker_quarantine_slice(&mut tally, seed, algorithm, &mut metrics);
    let deadline = deadline_slice(&mut tally, seed, algorithm, &mut metrics);

    let survived = tally.survived_rate();
    let served = tally.served_rate();
    println!(
        "\nsoak totals: {} issued, {} served, {} refused, {} incorrect — survival {survived:.3}, served {served:.3}",
        tally.issued, tally.served, tally.refused, tally.incorrect
    );
    println!(
        "fault kinds injected: {} drops, {} corruptions, {} crashes",
        tally.drops, tally.corruptions, tally.crashes
    );

    artifact.section(
        "survival",
        Json::obj()
            .set("issued", tally.issued)
            .set("completed", tally.completed)
            .set("served", tally.served)
            .set("refused", tally.refused)
            .set("incorrect", tally.incorrect)
            .set("survived_rate", survived)
            .set("served_rate", served),
    );
    artifact.section(
        "rungs",
        Json::obj()
            .set("packed", tally.rungs[0])
            .set("linked", tally.rungs[1])
            .set("hashmap", tally.rungs[2])
            .set("reference", tally.rungs[3])
            .set("descents", tally.descents)
            .set("quarantine_served", tally.quarantine_served),
    );
    artifact.section("breaker", breaker);
    artifact.section("deadline", deadline);
    artifact.section(
        "fault_kinds",
        Json::obj()
            .set("drops", tally.drops)
            .set("corruptions", tally.corruptions)
            .set("crashes", tally.crashes)
            .set("total", tally.drops + tally.corruptions + tally.crashes),
    );
    artifact.section("percentiles", percentiles_section(&metrics));
    artifact.section("budget", budget_section(&budget, DEFAULT_TOLERANCE));
    artifact.finish();

    // The gates: the binary is its own regression check.
    let mut failed = false;
    if survived < 1.0 {
        eprintln!("GATE FAILED: survival rate {survived} < 1.0");
        failed = true;
    }
    if served < 0.9 {
        eprintln!("GATE FAILED: served rate {served} < 0.9");
        failed = true;
    }
    if tally.incorrect > 0 {
        eprintln!(
            "GATE FAILED: {} served product(s) failed to verify",
            tally.incorrect
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall gates passed: zero aborts, zero incorrect products.");
}

/// Trip a breaker organically, observe open → half-open → closed, and run
/// the quarantine → probe → readmission round trip on the same structure.
fn breaker_quarantine_slice(
    tally: &mut Tally,
    seed: u64,
    algorithm: Algorithm,
    metrics: &mut MetricsRegistry,
) -> Json {
    println!("\n# chaos — breaker/quarantine slice\n");
    let inst = scattered_workload(40, 4, seed ^ 0xB4EA);
    let key = StructureKey::of(&inst, algorithm, false);
    let mut sup = Supervisor::new(SupervisorConfig {
        retry: RetryPolicy {
            checkpoint_every: 8,
            max_attempts: 2,
            base_round_budget: 256,
        },
        breaker_threshold: 2,
        breaker_cooldown: 2,
        quarantine_threshold: 2,
        ..SupervisorConfig::default()
    });
    let storm = FaultSpec {
        seed: seed ^ 0xFA11,
        drop_rate: 0.8,
        corrupt_rate: 0.8,
        crash_rate: 0.3,
    };
    let clean = FaultSpec::none(1);

    // Storm requests until the breaker trips (threshold 2 ⇒ normally two).
    let mut storm_requests = 0u64;
    while sup
        .breaker(&key)
        .is_none_or(|b| b.state() != BreakerState::Open)
        && storm_requests < 8
    {
        tally.issued += 1;
        let outcome = sup.run_supervised_traced::<Fp, _>(
            &inst,
            algorithm,
            seed.wrapping_add(storm_requests),
            false,
            &FaultSpec {
                seed: storm.seed.wrapping_add(storm_requests),
                ..storm
            },
            None,
            metrics,
        );
        tally.absorb(&outcome);
        storm_requests += 1;
    }
    let opened_after_storm = sup
        .breaker(&key)
        .is_some_and(|b| b.state() == BreakerState::Open);
    println!("breaker opened after {storm_requests} storm request(s): {opened_after_storm}");

    // While open, a request is refused — that is the rejected count.
    tally.issued += 1;
    let refused =
        sup.run_supervised_traced::<Fp, _>(&inst, algorithm, seed, false, &clean, None, metrics);
    let was_refused = matches!(refused.result, Err(ServeError::BreakerOpen { .. }));
    tally.absorb(&refused);
    println!("open-state refusal observed: {was_refused}");

    // The same storm quarantined the plan; readmit via clean lint + probe.
    let was_quarantined = sup.cache().is_quarantined_key(&key);
    let readmitted = if was_quarantined {
        sup.cache_mut()
            .try_readmit::<Fp>(&inst, algorithm, false, seed ^ 0x9406)
            .is_ok()
    } else {
        false
    };
    println!("quarantined: {was_quarantined}, readmitted via probe: {readmitted}");

    // Cooldown elapsed: the next request is the half-open probe; clean, so
    // it closes the breaker.
    tally.issued += 1;
    let probe =
        sup.run_supervised_traced::<Fp, _>(&inst, algorithm, seed, false, &clean, None, metrics);
    let probe_served = probe.result.is_ok();
    tally.absorb(&probe);
    let closed = sup
        .breaker(&key)
        .is_some_and(|b| b.state() == BreakerState::Closed);
    println!("half-open probe served: {probe_served}, breaker closed: {closed}");

    let b = sup.breaker(&key).expect("breaker exists");
    Json::obj()
        .set("opened", b.opened)
        .set("half_opened", b.half_opened)
        .set("closed_from_probe", b.closed_from_probe)
        .set("rejected", b.rejected)
        .set("storm_requests", storm_requests)
        .set("quarantined", u64::from(was_quarantined))
        .set("readmitted", u64::from(readmitted))
}

/// Force `DeadlineExceeded` with a tight budget + storm (the inter-rung
/// backoff charges the virtual clock), and show clean requests under a
/// generous budget still serve.
fn deadline_slice(
    tally: &mut Tally,
    seed: u64,
    algorithm: Algorithm,
    metrics: &mut MetricsRegistry,
) -> Json {
    println!("\n# chaos — tight-deadline slice\n");
    let inst = scattered_workload(40, 4, seed ^ 0xDEAD);
    let storm = FaultSpec {
        seed: seed ^ 0x7160,
        drop_rate: 0.8,
        corrupt_rate: 0.8,
        crash_rate: 0.3,
    };
    let tight_budget = Duration::from_micros(20);
    let mut tight = Supervisor::new(SupervisorConfig {
        deadline: Some(tight_budget),
        backoff_base: Duration::from_micros(500),
        backoff_cap: Duration::from_millis(5),
        retry: RetryPolicy {
            checkpoint_every: 8,
            max_attempts: 2,
            base_round_budget: 256,
        },
        breaker_threshold: u32::MAX,
        quarantine_threshold: u32::MAX,
        ..SupervisorConfig::default()
    });
    let mut misses = 0u64;
    let tight_requests = 3u64;
    for req in 0..tight_requests {
        tally.issued += 1;
        let outcome = tight.run_supervised_traced::<Fp, _>(
            &inst,
            algorithm,
            seed.wrapping_add(req),
            false,
            &FaultSpec {
                seed: storm.seed.wrapping_add(req),
                ..storm
            },
            None,
            metrics,
        );
        if outcome.deadline_missed {
            misses += 1;
            assert!(
                matches!(outcome.result, Err(ServeError::DeadlineExceeded { .. })),
                "a missed deadline must surface as the typed error"
            );
        }
        tally.absorb(&outcome);
    }
    println!("tight budget ({tight_budget:?}) under storm: {misses}/{tight_requests} missed");

    // Same structure, generous budget, no faults: all served.
    let mut generous = Supervisor::new(SupervisorConfig {
        deadline: Some(Duration::from_secs(30)),
        breaker_threshold: u32::MAX,
        quarantine_threshold: u32::MAX,
        ..SupervisorConfig::default()
    });
    let mut served_within = 0u64;
    let generous_requests = 2u64;
    for req in 0..generous_requests {
        tally.issued += 1;
        let outcome = generous.run_supervised_traced::<Fp, _>(
            &inst,
            algorithm,
            seed.wrapping_add(req),
            false,
            &FaultSpec::none(1),
            None,
            metrics,
        );
        if outcome.result.is_ok() {
            served_within += 1;
        }
        tally.absorb(&outcome);
    }
    println!("generous budget, no faults: {served_within}/{generous_requests} served");

    Json::obj()
        .set("tight_budget_us", tight_budget.as_micros() as u64)
        .set("tight_requests", tight_requests)
        .set("misses", misses)
        .set("generous_requests", generous_requests)
        .set("served_within", served_within)
}
