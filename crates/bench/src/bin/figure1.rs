//! Regenerate the **§1.2 figure** — progress of the round-complexity
//! exponent towards the conditional milestones — from the recurrences, with
//! an ASCII rendering of the ladder.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin figure1 [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/figure1.json`.

use std::time::Instant;

use lowband_bench::report::{
    budget_section, reservoir_section, BudgetEntry, Json, JsonReport, Reservoir, DEFAULT_TOLERANCE,
};
use lowband_bench::TablePrinter;
use lowband_core::optimizer::{headline_exponents, lambda_field, OMEGA_STRASSEN};

fn bar(lo: f64, hi: f64, value: f64, width: usize) -> String {
    let frac = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

fn main() {
    let mut artifact = JsonReport::new("figure1");
    println!("# Figure (§1.2) — exponent progress towards the dense milestones\n");
    // Reservoir-timed headline computation: this bin's only workload.
    let mut eval_ns = Reservoir::new(32);
    for _ in 0..32 {
        let t0 = Instant::now();
        std::hint::black_box(headline_exponents(0.00001));
        eval_ns.record(t0.elapsed().as_nanos() as u64);
    }
    let h = headline_exponents(0.00001);

    let rows: Vec<(&str, f64, f64)> = vec![
        ("trivial", 2.0, 2.0),
        ("prior work (SPAA 2022)", h.prior_semiring, h.prior_field),
        ("this work (Theorem 4.2)", h.new_semiring, h.new_field),
        ("strassen-engine variant", f64::NAN, {
            use lowband_core::optimizer::{optimal_schedule, Phase2};
            optimal_schedule(lambda_field(OMEGA_STRASSEN), 0.00001, Phase2::ThisWork).exponent
        }),
        (
            "milestone (⇒ dense breakthrough)",
            h.milestone_semiring,
            h.milestone_field,
        ),
    ];

    let t = TablePrinter::new(&["algorithm", "semirings", "fields"], &[34, 10, 10]);
    for (name, s, f) in &rows {
        artifact.section(
            "ladder",
            Json::Arr(vec![Json::obj()
                .set("algorithm", *name)
                .set(
                    "semiring_exponent",
                    if s.is_nan() { None } else { Some(*s) },
                )
                .set("field_exponent", *f)]),
        );
        t.row(&[
            (*name).into(),
            if s.is_nan() {
                "—".into()
            } else {
                format!("{s:.3}")
            },
            format!("{f:.3}"),
        ]);
    }

    println!("\n## Ladder (semirings), exponent axis from 1.333 to 2.0\n");
    for (name, s, _) in &rows {
        if s.is_nan() {
            continue;
        }
        println!("{:<34} {} {:.3}", name, bar(1.30, 2.0, *s, 40), s);
    }
    println!("\n## Ladder (fields), exponent axis from 1.156 to 2.0\n");
    for (name, _, f) in &rows {
        println!("{:<34} {} {:.3}", name, bar(1.15, 2.0, *f, 40), f);
    }

    // The progress fractions the figure illustrates.
    let closed_semi = (2.0 - h.new_semiring) / (2.0 - h.milestone_semiring);
    let closed_field = (2.0 - h.new_field) / (2.0 - h.milestone_field);
    println!(
        "\nthis work closes {:.1}% of the trivial→milestone gap for semirings and \
         {:.1}% for fields\n(prior work: {:.1}% / {:.1}%).",
        100.0 * closed_semi,
        100.0 * closed_field,
        100.0 * (2.0 - h.prior_semiring) / (2.0 - h.milestone_semiring),
        100.0 * (2.0 - h.prior_field) / (2.0 - h.milestone_field),
    );
    artifact.section(
        "gap_closed",
        Json::obj()
            .set("semiring_fraction", closed_semi)
            .set("field_fraction", closed_field)
            .set(
                "prior_semiring_fraction",
                (2.0 - h.prior_semiring) / (2.0 - h.milestone_semiring),
            )
            .set(
                "prior_field_fraction",
                (2.0 - h.prior_field) / (2.0 - h.milestone_field),
            ),
    );
    artifact.section(
        "percentiles",
        reservoir_section(&[("optimizer.headline_nanos", &eval_ns)]),
    );
    // The figure's claim as invariants: this work's exponents sit below
    // prior work's (predicted = prior, observed = ours ⇒ ratio ≥ 1), and
    // at or above the conditional milestones.
    artifact.section(
        "budget",
        budget_section(
            &[
                BudgetEntry::new(
                    "figure1 semiring improvement",
                    "exponent",
                    "prior SPAA 2022 semiring exponent upper-bounds this work",
                    h.prior_semiring,
                    h.new_semiring,
                ),
                BudgetEntry::new(
                    "figure1 field improvement",
                    "exponent",
                    "prior SPAA 2022 field exponent upper-bounds this work",
                    h.prior_field,
                    h.new_field,
                ),
                BudgetEntry::new(
                    "figure1 semiring milestone",
                    "exponent",
                    "this work upper-bounds the conditional milestone",
                    h.new_semiring,
                    h.milestone_semiring,
                ),
            ],
            DEFAULT_TOLERANCE,
        ),
    );
    artifact.finish();
}
