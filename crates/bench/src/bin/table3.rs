//! Regenerate **Table 3** — the semiring parameter schedule of Lemma 4.13 —
//! from the optimizer recurrence, next to the paper's printed values.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin table3 [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/table3.json`.

use std::time::Instant;

use lowband_bench::report::{
    budget_section, reservoir_section, BudgetEntry, Json, JsonReport, Reservoir, DEFAULT_TOLERANCE,
};
use lowband_bench::TablePrinter;
use lowband_core::optimizer::{schedule, Phase2, LAMBDA_SEMIRING};

const PAPER: [(f64, f64, f64, f64, f64); 4] = [
    (0.00001, 0.00000, 0.10672, 1.86698, 1.89328),
    (0.00001, 0.10672, 0.12806, 1.86696, 1.87194),
    (0.00001, 0.12806, 0.13233, 1.86697, 1.86767),
    (0.00001, 0.13233, 0.13319, 1.86700, 1.86681),
];

fn main() {
    let mut artifact = JsonReport::new("table3");
    println!("# Table 3 — parameters for the proof of Lemma 4.13 (semirings)\n");
    println!("recurrence: ε_t = (A − λ − 4δ + γ_t)/5, γ_(t+1) = ε_t, with A = 1.867, λ = 4/3\n");
    // Time the recurrence evaluation into an exact reservoir — this bin
    // has no simulated runs, so the optimizer itself is the measured
    // workload for the `percentiles` section.
    let mut eval_ns = Reservoir::new(64);
    for _ in 0..64 {
        let t0 = Instant::now();
        std::hint::black_box(schedule(LAMBDA_SEMIRING, 0.00001, 1.867, Phase2::ThisWork));
        eval_ns.record(t0.elapsed().as_nanos() as u64);
    }
    let s = schedule(LAMBDA_SEMIRING, 0.00001, 1.867, Phase2::ThisWork);
    let t = TablePrinter::new(
        &["step", "δ", "γ", "ε", "α", "β", "paper ε", "|Δε|"],
        &[4, 8, 8, 8, 8, 8, 8, 9],
    );
    for (i, row) in s.steps.iter().enumerate() {
        let paper_eps = PAPER.get(i).map(|p| p.2).unwrap_or(f64::NAN);
        artifact.section(
            "steps",
            Json::Arr(vec![Json::obj()
                .set("step", i + 1)
                .set("delta", row.delta)
                .set("gamma", row.gamma)
                .set("eps", row.eps)
                .set("alpha", row.alpha)
                .set("beta", row.beta)
                .set("paper_eps", paper_eps)
                .set("eps_deviation", (row.eps - paper_eps).abs())]),
        );
        t.row(&[
            (i + 1).to_string(),
            format!("{:.5}", row.delta),
            format!("{:.5}", row.gamma),
            format!("{:.5}", row.eps),
            format!("{:.5}", row.alpha),
            format!("{:.5}", row.beta),
            format!("{paper_eps:.5}"),
            format!("{:.1e}", (row.eps - paper_eps).abs()),
        ]);
    }
    assert_eq!(s.steps.len(), 4, "paper's Table 3 has four steps");
    let max_dev = s
        .steps
        .iter()
        .zip(&PAPER)
        .map(|(r, p)| (r.eps - p.2).abs())
        .fold(0.0f64, f64::max)
        .max(
            s.steps
                .iter()
                .zip(&PAPER)
                .map(|(r, p)| (r.beta - p.4).abs())
                .fold(0.0f64, f64::max),
        );
    println!("\nmax deviation from the paper's printed table: {max_dev:.2e}");
    println!(
        "overall exponent: every pass ≤ O(d^{:.3}) and the residual (β = {:.5}) is\n\
         processed by Lemma 3.1 within the same budget — Theorem 4.2's O(d^1.867).",
        s.exponent,
        s.steps.last().unwrap().beta
    );
    artifact.section(
        "summary",
        Json::obj()
            .set("max_deviation", max_dev)
            .set("exponent", s.exponent)
            .set("residual_beta", s.steps.last().unwrap().beta),
    );
    artifact.section(
        "percentiles",
        reservoir_section(&[("optimizer.schedule_nanos", &eval_ns)]),
    );
    // The exponent is this bin's "observed communication" — the budget
    // rows pin it under the paper's headline and under prior work.
    artifact.section(
        "budget",
        budget_section(
            &[
                BudgetEntry::new(
                    "table3 semiring exponent",
                    "exponent",
                    "paper headline A = 1.867 (Lemma 4.13)",
                    1.867,
                    s.exponent,
                ),
                BudgetEntry::new(
                    "table3 vs prior work",
                    "exponent",
                    "SPAA 2022 semiring exponent 1.927",
                    1.927,
                    s.exponent,
                ),
            ],
            DEFAULT_TOLERANCE,
        ),
    );
    artifact.finish();
}
