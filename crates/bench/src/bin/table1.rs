//! Regenerate **Table 1** — complexity of distributed sparse matrix
//! multiplication — as (a) the analytic exponents recomputed from the
//! paper's recurrences and (b) measured round counts with fitted exponents
//! from live simulation on the extremal workload.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin table1
//! ```

use lowband_bench::{block_workload, fit_exponent, lemma31_rounds, TablePrinter};
use lowband_core::algorithms::{solve_trivial, solve_two_phase};
use lowband_core::densemm::DenseEngine;
use lowband_core::optimizer::{headline_exponents, lambda_field, OMEGA_PAPER, OMEGA_STRASSEN};
use lowband_core::TriangleSet;

fn main() {
    println!("# Table 1 — complexity of distributed sparse matrix multiplication\n");

    // ---- Analytic rows ----------------------------------------------------
    let h = headline_exponents(0.00001);
    println!("## Analytic exponents (recomputed from the paper's recurrences)\n");
    let t = TablePrinter::new(
        &["algorithm", "semirings", "fields", "reference"],
        &[34, 12, 12, 22],
    );
    t.row(&[
        "trivial (gather everything)".into(),
        "O(n^2)".into(),
        "O(n^2)".into(),
        "trivial".into(),
    ]);
    t.row(&[
        "dense, congested-clique sim".into(),
        "O(n^4/3)".into(),
        format!("O(n^{:.4})", lambda_field(OMEGA_PAPER)),
        "[23, 3]".into(),
    ]);
    t.row(&[
        "moderately sparse".into(),
        "O(d n^1/3)".into(),
        "O(d n^1/3)".into(),
        "[2]".into(),
    ]);
    t.row(&[
        "trivial sparse".into(),
        "O(d^2)".into(),
        "O(d^2)".into(),
        "trivial, [13]".into(),
    ]);
    t.row(&[
        "prior two-phase (SPAA 2022)".into(),
        format!("O(d^{:.3})", h.prior_semiring),
        format!("O(d^{:.3})", h.prior_field),
        "[13]".into(),
    ]);
    t.row(&[
        "this work, Theorem 4.2".into(),
        format!("O(d^{:.3})", h.new_semiring),
        format!("O(d^{:.3})", h.new_field),
        "Theorem 4.2".into(),
    ]);
    println!(
        "\npaper prints: prior 1.927 / 1.907, this work 1.867 / 1.832 \
         (our recurrence gives the prior semiring bound as {:.4}; the paper \
         rounds it to 1.927)\n",
        h.prior_semiring
    );

    // ---- Measured rows ----------------------------------------------------
    println!(
        "## Measured rounds on the extremal [US:US:US] workload (dense d×d blocks, 4 blocks)\n"
    );
    let ds = [8usize, 27, 64];
    let t = TablePrinter::new(
        &[
            "d",
            "triangles",
            "trivial",
            "Lemma 3.1 (κ=d²)",
            "two-phase cube",
            "two-phase strassen",
            "fast-field model",
        ],
        &[4, 10, 9, 16, 14, 18, 16],
    );
    let mut trivial_pts = Vec::new();
    let mut lemma_pts = Vec::new();
    let mut cube_pts = Vec::new();
    let mut strassen_pts = Vec::new();
    let mut fast_pts = Vec::new();
    for &d in &ds {
        let inst = block_workload(4, d);
        let ts = TriangleSet::enumerate(&inst);
        let trivial = solve_trivial(&inst, &ts.triangles, 0).unwrap().rounds();
        let lemma = lemma31_rounds(&inst, None);
        let cube = solve_two_phase(&inst, d, DenseEngine::Cube3d, 0).unwrap();
        let strassen = solve_two_phase(&inst, d, DenseEngine::StrassenExec, 0).unwrap();
        let fast =
            solve_two_phase(&inst, d, DenseEngine::FastField { omega: OMEGA_PAPER }, 0).unwrap();
        trivial_pts.push((d as f64, trivial as f64));
        lemma_pts.push((d as f64, lemma as f64));
        cube_pts.push((d as f64, cube.rounds() as f64));
        strassen_pts.push((d as f64, strassen.rounds() as f64));
        fast_pts.push((d as f64, fast.modeled_rounds));
        t.row(&[
            d.to_string(),
            ts.len().to_string(),
            trivial.to_string(),
            lemma.to_string(),
            cube.rounds().to_string(),
            strassen.rounds().to_string(),
            format!("{:.0}", fast.modeled_rounds),
        ]);
    }
    // ---- Measured dense baseline -------------------------------------------
    println!(
        "\n## Measured dense baseline: full-network cube O(n^4/3) (Table 1 row 2, semirings)\n"
    );
    let t2 = TablePrinter::new(&["n", "rounds", "n^4/3"], &[6, 8, 8]);
    let mut dense_pts = Vec::new();
    for n in [27usize, 64, 125] {
        let full = lowband_matrix::Support::full(n, n);
        let inst = lowband_core::Instance::balanced(full.clone(), full.clone(), full);
        let rounds = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        dense_pts.push((n as f64, rounds as f64));
        t2.row(&[
            n.to_string(),
            rounds.to_string(),
            format!("{:.0}", (n as f64).powf(4.0 / 3.0)),
        ]);
    }
    let (dense_e, _) = fit_exponent(&dense_pts).expect("dense sweep has positive rounds");
    println!("\nfitted exponent: {dense_e:.3} (theory: 4/3 = 1.333)\n");

    // ---- Measured moderately-sparse row -------------------------------------
    println!(
        "\n## Measured O(d·n^1/3) row (Table 1 row 3): sparse inputs on the full-network cube\n"
    );
    let t3 = TablePrinter::new(&["n", "d", "rounds", "d·n^1/3"], &[6, 4, 8, 9]);
    let mut sparse_pts = Vec::new();
    let d_fixed = 2usize;
    for n in [64usize, 216, 512] {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let inst = lowband_core::Instance::balanced(
            lowband_matrix::gen::uniform_sparse(n, d_fixed, &mut rng),
            lowband_matrix::gen::uniform_sparse(n, d_fixed, &mut rng),
            lowband_matrix::Support::full(n, n),
        );
        let rounds = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        sparse_pts.push((n as f64, rounds as f64));
        t3.row(&[
            n.to_string(),
            d_fixed.to_string(),
            rounds.to_string(),
            format!("{:.0}", d_fixed as f64 * (n as f64).powf(1.0 / 3.0)),
        ]);
    }
    let (sparse_e, _) = fit_exponent(&sparse_pts).expect("sparse sweep has positive rounds");
    println!("\nfitted exponent in n at fixed d: {sparse_e:.3} (theory: 1/3 = 0.333)\n");

    // ---- Measured dense FIELD row: executable distributed Strassen -----------
    println!("\n## Measured dense field engine: distributed Strassen (ω = 2.807, executable)\n");
    let t4 = TablePrinter::new(
        &["n", "strassen", "cube", "n^1.288", "n^4/3"],
        &[6, 9, 8, 8, 8],
    );
    let mut str_pts = Vec::new();
    for n in [7usize, 49] {
        let full = lowband_matrix::Support::full(n, n);
        let inst = lowband_core::Instance::balanced(full.clone(), full.clone(), full);
        let strassen = lowband_core::strassen::solve_strassen(&inst, 0)
            .unwrap()
            .rounds();
        let cube = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        str_pts.push((n as f64, strassen as f64));
        t4.row(&[
            n.to_string(),
            strassen.to_string(),
            cube.to_string(),
            format!("{:.0}", (n as f64).powf(1.288)),
            format!("{:.0}", (n as f64).powf(4.0 / 3.0)),
        ]);
    }
    let (str_e, _) = fit_exponent(&str_pts).expect("strassen sweep has positive rounds");
    println!(
        "\nfitted growth exponent: {str_e:.3} (theory 2−2/ω = 1.288; padding and the\n\
         8-phase constant inflate small sizes — the cube keeps better constants, the\n\
         recursion keeps the better exponent)\n"
    );

    println!("\n## Fitted exponents (rounds ~ c·d^e over the sweep above)\n");
    let t = TablePrinter::new(&["algorithm", "fitted e", "paper bound"], &[26, 10, 14]);
    for (name, pts, bound) in [
        ("trivial", &trivial_pts, "2.000"),
        ("Lemma 3.1 (κ = d²)", &lemma_pts, "2.000"),
        ("two-phase, cube engine", &cube_pts, "λ = 1.333"),
        ("two-phase, strassen exec", &strassen_pts, "λ = 1.288"),
        ("two-phase, fast-field", &fast_pts, "1.157 (dense part)"),
    ] {
        let fitted = match fit_exponent(pts) {
            Some((e, _)) => format!("{e:.3}"),
            None => "n/a".into(),
        };
        t.row(&[name.into(), fitted, bound.into()]);
    }
    println!(
        "\nNote: on the fully clustered workload the two-phase cost is pure dense-engine\n\
         cost, so the fitted exponent tracks the engine's λ, not the worst-case 1.867 —\n\
         the worst-case exponent is the max over workloads of phase-1/phase-2 splits\n\
         (see EXPERIMENTS.md, E1). Strassen's implementable ω = {OMEGA_STRASSEN} gives\n\
         λ = {:.3} as a realizable field engine.",
        lambda_field(OMEGA_STRASSEN)
    );
}
