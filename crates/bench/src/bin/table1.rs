//! Regenerate **Table 1** — complexity of distributed sparse matrix
//! multiplication — as (a) the analytic exponents recomputed from the
//! paper's recurrences and (b) measured round counts with fitted exponents
//! from live simulation on the extremal workload.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin table1 [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/table1.json` (same rows as
//! structured data, plus a traced end-to-end execution with its metrics
//! snapshot).

use lowband_bench::report::{
    budget_section, format_rate, percentiles_section, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{block_workload, fit_exponent, lemma31_rounds, TablePrinter};
use lowband_core::algorithms::{solve_trivial, solve_two_phase};
use lowband_core::densemm::DenseEngine;
use lowband_core::optimizer::{headline_exponents, lambda_field, OMEGA_PAPER, OMEGA_STRASSEN};
use lowband_core::TriangleSet;
use lowband_matrix::Fp;
use lowband_model::trace::MetricsRegistry;

fn main() {
    let mut report = JsonReport::new("table1");
    println!("# Table 1 — complexity of distributed sparse matrix multiplication\n");

    // ---- Analytic rows ----------------------------------------------------
    let h = headline_exponents(0.00001);
    println!("## Analytic exponents (recomputed from the paper's recurrences)\n");
    let t = TablePrinter::new(
        &["algorithm", "semirings", "fields", "reference"],
        &[34, 12, 12, 22],
    );
    t.row(&[
        "trivial (gather everything)".into(),
        "O(n^2)".into(),
        "O(n^2)".into(),
        "trivial".into(),
    ]);
    t.row(&[
        "dense, congested-clique sim".into(),
        "O(n^4/3)".into(),
        format!("O(n^{:.4})", lambda_field(OMEGA_PAPER)),
        "[23, 3]".into(),
    ]);
    t.row(&[
        "moderately sparse".into(),
        "O(d n^1/3)".into(),
        "O(d n^1/3)".into(),
        "[2]".into(),
    ]);
    t.row(&[
        "trivial sparse".into(),
        "O(d^2)".into(),
        "O(d^2)".into(),
        "trivial, [13]".into(),
    ]);
    t.row(&[
        "prior two-phase (SPAA 2022)".into(),
        format!("O(d^{:.3})", h.prior_semiring),
        format!("O(d^{:.3})", h.prior_field),
        "[13]".into(),
    ]);
    t.row(&[
        "this work, Theorem 4.2".into(),
        format!("O(d^{:.3})", h.new_semiring),
        format!("O(d^{:.3})", h.new_field),
        "Theorem 4.2".into(),
    ]);
    println!(
        "\npaper prints: prior 1.927 / 1.907, this work 1.867 / 1.832 \
         (our recurrence gives the prior semiring bound as {:.4}; the paper \
         rounds it to 1.927)\n",
        h.prior_semiring
    );
    report.section(
        "analytic_exponents",
        Json::obj()
            .set("prior_semiring", h.prior_semiring)
            .set("prior_field", h.prior_field)
            .set("new_semiring", h.new_semiring)
            .set("new_field", h.new_field)
            .set("lambda_field_paper", lambda_field(OMEGA_PAPER))
            .set("lambda_field_strassen", lambda_field(OMEGA_STRASSEN)),
    );

    // ---- Measured rows ----------------------------------------------------
    println!(
        "## Measured rounds on the extremal [US:US:US] workload (dense d×d blocks, 4 blocks)\n"
    );
    let ds = [8usize, 27, 64];
    let t = TablePrinter::new(
        &[
            "d",
            "triangles",
            "trivial",
            "Lemma 3.1 (κ=d²)",
            "two-phase cube",
            "two-phase strassen",
            "fast-field model",
        ],
        &[4, 10, 9, 16, 14, 18, 16],
    );
    let mut trivial_pts = Vec::new();
    let mut lemma_pts = Vec::new();
    let mut cube_pts = Vec::new();
    let mut strassen_pts = Vec::new();
    let mut fast_pts = Vec::new();
    for &d in &ds {
        let inst = block_workload(4, d);
        let ts = TriangleSet::enumerate(&inst);
        let trivial = solve_trivial(&inst, &ts.triangles, 0).unwrap().rounds();
        let lemma = lemma31_rounds(&inst, None);
        let cube = solve_two_phase(&inst, d, DenseEngine::Cube3d, 0).unwrap();
        let strassen = solve_two_phase(&inst, d, DenseEngine::StrassenExec, 0).unwrap();
        let fast =
            solve_two_phase(&inst, d, DenseEngine::FastField { omega: OMEGA_PAPER }, 0).unwrap();
        trivial_pts.push((d as f64, trivial as f64));
        lemma_pts.push((d as f64, lemma as f64));
        cube_pts.push((d as f64, cube.rounds() as f64));
        strassen_pts.push((d as f64, strassen.rounds() as f64));
        fast_pts.push((d as f64, fast.modeled_rounds));
        report.section(
            "measured_rounds",
            Json::Arr(vec![Json::obj()
                .set("d", d)
                .set("triangles", ts.len())
                .set("trivial", trivial)
                .set("lemma31", lemma)
                .set("two_phase_cube", cube.rounds())
                .set("two_phase_strassen", strassen.rounds())
                .set("fast_field_modeled", fast.modeled_rounds)]),
        );
        t.row(&[
            d.to_string(),
            ts.len().to_string(),
            trivial.to_string(),
            lemma.to_string(),
            cube.rounds().to_string(),
            strassen.rounds().to_string(),
            format!("{:.0}", fast.modeled_rounds),
        ]);
    }
    // ---- Measured dense baseline -------------------------------------------
    println!(
        "\n## Measured dense baseline: full-network cube O(n^4/3) (Table 1 row 2, semirings)\n"
    );
    let t2 = TablePrinter::new(&["n", "rounds", "n^4/3"], &[6, 8, 8]);
    let mut dense_pts = Vec::new();
    for n in [27usize, 64, 125] {
        let full = lowband_matrix::Support::full(n, n);
        let inst = lowband_core::Instance::balanced(full.clone(), full.clone(), full);
        let rounds = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        dense_pts.push((n as f64, rounds as f64));
        report.section(
            "dense_baseline",
            Json::Arr(vec![Json::obj().set("n", n).set("rounds", rounds)]),
        );
        t2.row(&[
            n.to_string(),
            rounds.to_string(),
            format!("{:.0}", (n as f64).powf(4.0 / 3.0)),
        ]);
    }
    let (dense_e, _) = fit_exponent(&dense_pts).expect("dense sweep has positive rounds");
    println!("\nfitted exponent: {dense_e:.3} (theory: 4/3 = 1.333)\n");

    // ---- Measured moderately-sparse row -------------------------------------
    println!(
        "\n## Measured O(d·n^1/3) row (Table 1 row 3): sparse inputs on the full-network cube\n"
    );
    let t3 = TablePrinter::new(&["n", "d", "rounds", "d·n^1/3"], &[6, 4, 8, 9]);
    let mut sparse_pts = Vec::new();
    let d_fixed = 2usize;
    for n in [64usize, 216, 512] {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let inst = lowband_core::Instance::balanced(
            lowband_matrix::gen::uniform_sparse(n, d_fixed, &mut rng),
            lowband_matrix::gen::uniform_sparse(n, d_fixed, &mut rng),
            lowband_matrix::Support::full(n, n),
        );
        let rounds = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        sparse_pts.push((n as f64, rounds as f64));
        report.section(
            "sparse_cube",
            Json::Arr(vec![Json::obj()
                .set("n", n)
                .set("d", d_fixed)
                .set("rounds", rounds)]),
        );
        t3.row(&[
            n.to_string(),
            d_fixed.to_string(),
            rounds.to_string(),
            format!("{:.0}", d_fixed as f64 * (n as f64).powf(1.0 / 3.0)),
        ]);
    }
    let (sparse_e, _) = fit_exponent(&sparse_pts).expect("sparse sweep has positive rounds");
    println!("\nfitted exponent in n at fixed d: {sparse_e:.3} (theory: 1/3 = 0.333)\n");

    // ---- Measured dense FIELD row: executable distributed Strassen -----------
    println!("\n## Measured dense field engine: distributed Strassen (ω = 2.807, executable)\n");
    let t4 = TablePrinter::new(
        &["n", "strassen", "cube", "n^1.288", "n^4/3"],
        &[6, 9, 8, 8, 8],
    );
    let mut str_pts = Vec::new();
    for n in [7usize, 49] {
        let full = lowband_matrix::Support::full(n, n);
        let inst = lowband_core::Instance::balanced(full.clone(), full.clone(), full);
        let strassen = lowband_core::strassen::solve_strassen(&inst, 0)
            .unwrap()
            .rounds();
        let cube = lowband_core::algorithms::solve_dense_cube(&inst, 0)
            .unwrap()
            .rounds();
        str_pts.push((n as f64, strassen as f64));
        report.section(
            "strassen_field",
            Json::Arr(vec![Json::obj()
                .set("n", n)
                .set("strassen", strassen)
                .set("cube", cube)]),
        );
        t4.row(&[
            n.to_string(),
            strassen.to_string(),
            cube.to_string(),
            format!("{:.0}", (n as f64).powf(1.288)),
            format!("{:.0}", (n as f64).powf(4.0 / 3.0)),
        ]);
    }
    let (str_e, _) = fit_exponent(&str_pts).expect("strassen sweep has positive rounds");
    println!(
        "\nfitted growth exponent: {str_e:.3} (theory 2−2/ω = 1.288; padding and the\n\
         8-phase constant inflate small sizes — the cube keeps better constants, the\n\
         recursion keeps the better exponent)\n"
    );

    println!("\n## Fitted exponents (rounds ~ c·d^e over the sweep above)\n");
    let t = TablePrinter::new(&["algorithm", "fitted e", "paper bound"], &[26, 10, 14]);
    for (name, pts, bound) in [
        ("trivial", &trivial_pts, "2.000"),
        ("Lemma 3.1 (κ = d²)", &lemma_pts, "2.000"),
        ("two-phase, cube engine", &cube_pts, "λ = 1.333"),
        ("two-phase, strassen exec", &strassen_pts, "λ = 1.288"),
        ("two-phase, fast-field", &fast_pts, "1.157 (dense part)"),
    ] {
        let fit = fit_exponent(pts);
        let fitted = match fit {
            Some((e, _)) => format!("{e:.3}"),
            None => "n/a".into(),
        };
        report.section(
            "fitted_exponents",
            Json::Arr(vec![Json::obj()
                .set("algorithm", name)
                .set("fitted", fit.map(|(e, _)| e))
                .set("bound", bound)]),
        );
        t.row(&[name.into(), fitted, bound.into()]);
    }
    report.section(
        "fit_dense_baseline",
        Json::obj().set("fitted", dense_e).set("theory", 4.0 / 3.0),
    );
    report.section(
        "fit_sparse_cube",
        Json::obj().set("fitted", sparse_e).set("theory", 1.0 / 3.0),
    );
    report.section(
        "fit_strassen_field",
        Json::obj().set("fitted", str_e).set("theory", 1.288),
    );
    println!(
        "\nNote: on the fully clustered workload the two-phase cost is pure dense-engine\n\
         cost, so the fitted exponent tracks the engine's λ, not the worst-case 1.867 —\n\
         the worst-case exponent is the max over workloads of phase-1/phase-2 splits\n\
         (see EXPERIMENTS.md, E1). Strassen's implementable ω = {OMEGA_STRASSEN} gives\n\
         λ = {:.3} as a realizable field engine.",
        lambda_field(OMEGA_STRASSEN)
    );

    // ---- Executed run (values, not just schedules) --------------------------
    // One verified end-to-end execution of the Lemma 3.1 algorithm on the
    // extremal workload, observed by a metrics registry: the structured
    // artifact carries the exact round/message totals plus wall-clock
    // throughput of the simulator itself.
    println!("\n## Executed run: Lemma 3.1 on block_workload(4, 8) over F_p\n");
    let inst = block_workload(4, 8);
    let mut metrics = MetricsRegistry::new();
    let run = lowband_core::run_algorithm_traced::<Fp, _>(
        &inst,
        lowband_core::Algorithm::BoundedTriangles,
        1,
        false,
        &mut metrics,
    )
    .expect("table-1 run executes");
    assert!(run.correct, "verified run must match the reference product");
    println!(
        "rounds {}  messages {}  triangles {}  correct {}  throughput {}",
        run.rounds,
        run.messages,
        run.triangles,
        run.correct,
        format_rate(run.events_per_sec),
    );
    report.section(
        "executed_run",
        Json::obj()
            .set("algorithm", "bounded_triangles")
            .set("workload", "block_workload(4, 8)")
            .set("rounds", run.rounds)
            .set("messages", run.messages)
            .set("triangles", run.triangles)
            .set("correct", run.correct)
            .set("events_per_sec", run.events_per_sec)
            .set("metrics", metrics.snapshot()),
    );
    // Latency percentiles of the traced run's histograms (round nanos,
    // per-node loads, request latency) and the paper's round/message
    // bounds checked against the observed totals.
    report.section("percentiles", percentiles_section(&metrics));
    report.section(
        "budget",
        budget_section(
            &lowband_core::budget::entries_for_report(
                "bounded_triangles/block(4,8)",
                &inst,
                lowband_core::Algorithm::BoundedTriangles,
                &run,
            ),
            DEFAULT_TOLERANCE,
        ),
    );

    report.finish();
}
