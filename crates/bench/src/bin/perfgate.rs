//! The perf-regression baseline gate.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin perfgate              # gate
//! cargo run -p lowband-bench --release --bin perfgate -- --update  # re-baseline
//! ```
//!
//! Re-measures a fixed set of **smaller-is-better** probes (median-of-K,
//! default K = 3) and compares them against the committed
//! `results/baseline.json`; any probe past `baseline · (1 + tolerance)`
//! fails the process with exit code 1. The probe set mirrors the repo's
//! three performance tentpoles:
//!
//! * **executor** — schedule compile, hash-executor and linked-executor
//!   wall clock on a block workload, plus the `linked_over_hash` ratio
//!   (the linked slot-store must stay decisively faster than hashing; it
//!   is also the canary for the `NoopTracer` zero-cost claim, since the
//!   executors run fully traced-out);
//! * **serving** — `warm_over_cold`: amortized per-run cost of a cached
//!   batch vs per-run recompilation;
//! * **packing** — `packed_over_sequential`: per-member cost of the lane
//!   plane executor vs the sequential warm path.
//!
//! Ratio probes are machine-portable and carry tight bands — they are the
//! real regression signal. Absolute nanosecond probes drift with the host,
//! so their bands are wide and only catch catastrophic slowdowns.
//!
//! `--update` rewrites `results/baseline.json` (full artifact envelope:
//! `probes`, `meta`, `percentiles`, `budget` sections — the baseline is
//! validated like every other results artifact). `--baseline <path>`
//! overrides the baseline location; `--k <N>` the median width.
//! `LOWBAND_PERFGATE_SLOWDOWN=<f64>` multiplies the linked-executor
//! timings — the self-test hook CI uses to prove a synthetic 2× slowdown
//! actually trips the gate.

use std::path::PathBuf;
use std::time::Instant;

use lowband_bench::report::{
    budget_section, reservoir_section, results_dir, Json, Reservoir, DEFAULT_TOLERANCE,
};
use lowband_bench::{block_workload, TablePrinter};
use lowband_core::budget::entries_for_observed;
use lowband_core::{compile_schedule, run_algorithm, Algorithm, BatchMode};
use lowband_matrix::{Fp, SparseMatrix, Wrap64};
use lowband_model::link;
use lowband_serve::{run_batch, ScheduleCache};
use lowband_trace::baseline::{all_pass, gate, probes_from_json, probes_to_json, Probe};
use rand::SeedableRng;

/// Per-probe relative tolerance for the absolute (nanosecond) probes.
const ABS_TOLERANCE: f64 = 1.5;
/// Per-probe relative tolerance for the dimensionless ratio probes.
const RATIO_TOLERANCE: f64 = 0.5;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Median-of-`k` wall clock of `f`, in nanoseconds, with every sample
/// also pushed into `samples` for the baseline's `percentiles` section.
fn median_ns<R>(k: usize, samples: &mut Reservoir, mut f: impl FnMut() -> R) -> f64 {
    let mut times = Vec::with_capacity(k);
    for _ in 0..k {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos() as f64;
        samples.record(ns as u64);
        times.push(ns);
    }
    median(times)
}

struct Measurements {
    /// `(probe id, value)` pairs in a fixed order.
    fresh: Vec<(String, f64)>,
    /// Raw per-iteration samples per absolute probe.
    reservoirs: Vec<(String, Reservoir)>,
    /// The executor workload's schedule vs the Lemma 3.1 budget.
    budget: Json,
}

fn measure(k: usize) -> Measurements {
    let slowdown: f64 = std::env::var("LOWBAND_PERFGATE_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let mut fresh = Vec::new();
    let mut reservoirs = Vec::new();
    let mut probe = |id: &str, value: f64| fresh.push((id.to_string(), value));

    // ---- executor probes: compile / hash / linked -------------------------
    let inst = block_workload(64, 16); // n = 1024, dense 16×16 clusters
    let mut res = Reservoir::new(k);
    let compile_ns = median_ns(k, &mut res, || {
        compile_schedule(&inst, Algorithm::BoundedTriangles).expect("compiles")
    });
    reservoirs.push(("perfgate.compile_nanos".to_string(), res));
    probe("compile_ns", compile_ns);

    let schedule = compile_schedule(&inst, Algorithm::BoundedTriangles).expect("compiles");
    let budget = budget_section(
        &entries_for_observed(
            "perfgate block(64,16)",
            &inst,
            Algorithm::BoundedTriangles,
            schedule.rounds(),
            schedule.messages(),
            schedule.capacity(),
        ),
        DEFAULT_TOLERANCE,
    );
    let linked = link(&schedule).expect("links");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x11A5);
    let a: SparseMatrix<Wrap64> = SparseMatrix::randomize(inst.ahat.clone(), &mut rng);
    let b: SparseMatrix<Wrap64> = SparseMatrix::randomize(inst.bhat.clone(), &mut rng);

    let mut res = Reservoir::new(k);
    let hash_ns = median_ns(k, &mut res, || {
        let mut m = inst.load_machine(&a, &b);
        m.run(&schedule).expect("runs").messages
    });
    reservoirs.push(("perfgate.hash_run_nanos".to_string(), res));
    probe("hash_run_ns", hash_ns);

    let mut res = Reservoir::new(k);
    let linked_ns = slowdown
        * median_ns(k, &mut res, || {
            let mut m = inst.load_linked(&a, &b, &linked);
            m.run().expect("runs").messages
        });
    reservoirs.push(("perfgate.linked_run_nanos".to_string(), res));
    probe("linked_run_ns", linked_ns);
    probe("linked_over_hash", linked_ns / hash_ns);

    // ---- serving probe: warm vs cold amortized per-run --------------------
    let small = block_workload(4, 8);
    let algorithm = Algorithm::BoundedTriangles;
    let seeds: Vec<u64> = (0..16u64).map(|s| 1000 + s).collect();
    let mut res = Reservoir::new(k);
    let cold_ns = median_ns(k, &mut res, || {
        seeds
            .iter()
            .map(|&s| run_algorithm::<Fp>(&small, algorithm, s).expect("cold run"))
            .count()
    }) / seeds.len() as f64;
    reservoirs.push(("perfgate.cold_batch_nanos".to_string(), res));

    let mut cache = ScheduleCache::new(4);
    run_batch::<Fp>(
        &mut cache,
        &small,
        algorithm,
        &seeds[..1],
        false,
        BatchMode::Sequential,
    )
    .expect("priming run");
    let mut res = Reservoir::new(k);
    let warm_ns = median_ns(k, &mut res, || {
        run_batch::<Fp>(
            &mut cache,
            &small,
            algorithm,
            &seeds,
            false,
            BatchMode::Sequential,
        )
        .expect("warm batch")
    }) / seeds.len() as f64;
    reservoirs.push(("perfgate.warm_batch_nanos".to_string(), res));
    probe("warm_over_cold", warm_ns / cold_ns);

    // ---- packing probe: lane planes vs sequential -------------------------
    let lanes = <Fp as lowband_core::BatchElement>::LANE_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= 16)
        .max()
        .expect("Fp has a narrow lane width");
    let wide: Vec<u64> = (0..64u64).map(|s| 2000 + s).collect();
    let mut res = Reservoir::new(k);
    let seq_ns = median_ns(k, &mut res, || {
        run_batch::<Fp>(
            &mut cache,
            &small,
            algorithm,
            &wide,
            false,
            BatchMode::Sequential,
        )
        .expect("sequential batch")
    }) / wide.len() as f64;
    reservoirs.push(("perfgate.sequential_member_nanos".to_string(), res));
    let mut res = Reservoir::new(k);
    let packed_ns = median_ns(k, &mut res, || {
        run_batch::<Fp>(
            &mut cache,
            &small,
            algorithm,
            &wide,
            false,
            BatchMode::Packed { lanes },
        )
        .expect("packed batch")
    }) / wide.len() as f64;
    reservoirs.push(("perfgate.packed_member_nanos".to_string(), res));
    probe("packed_over_sequential", packed_ns / seq_ns);

    Measurements {
        fresh,
        reservoirs,
        budget,
    }
}

/// Tolerance for a probe id: ratios get the tight band.
fn tolerance_for(id: &str) -> f64 {
    if id.contains("_over_") {
        RATIO_TOLERANCE
    } else {
        ABS_TOLERANCE
    }
}

fn unit_for(id: &str) -> &'static str {
    if id.contains("_over_") {
        "ratio"
    } else {
        "ns"
    }
}

fn write_baseline(path: &PathBuf, m: &Measurements, k: usize) -> std::io::Result<()> {
    let probes: Vec<Probe> = m
        .fresh
        .iter()
        .map(|(id, v)| Probe::new(id.clone(), *v, tolerance_for(id), unit_for(id)))
        .collect();
    let pairs: Vec<(&str, &Reservoir)> = m
        .reservoirs
        .iter()
        .map(|(id, r)| (id.as_str(), r))
        .collect();
    let doc = Json::obj().set("name", "baseline").set(
        "sections",
        Json::Obj(vec![
            ("probes".to_string(), probes_to_json(&probes)),
            (
                "meta".to_string(),
                Json::obj()
                    .set("median_of", k as u64)
                    .set("executor_workload", "block_workload(64, 16)")
                    .set("serving_workload", "block_workload(4, 8)"),
            ),
            ("percentiles".to_string(), reservoir_section(&pairs)),
            ("budget".to_string(), m.budget.clone()),
        ]),
    );
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, doc.to_pretty())
}

fn load_baseline(path: &PathBuf) -> Result<Vec<Probe>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e} (run `perfgate -- --update` first)", path.display()))?;
    let doc = lowband_trace::json::parse(&text).map_err(|e| e.to_string())?;
    let probes = doc
        .get("sections")
        .and_then(|s| s.get("probes"))
        .ok_or("baseline: missing sections.probes")?;
    probes_from_json(probes)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let update = args.iter().any(|a| a == "--update");
    let k = args
        .iter()
        .position(|a| a == "--k")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize)
        .max(1);
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("baseline.json"));

    println!(
        "# perfgate — median-of-{k} probes vs {}\n",
        baseline_path.display()
    );
    let m = measure(k);

    if update {
        write_baseline(&baseline_path, &m, k).expect("write baseline");
        println!(
            "wrote {} ({} probes)",
            baseline_path.display(),
            m.fresh.len()
        );
        return;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let results = gate(&baseline, &m.fresh);
    let t = TablePrinter::new(
        &["probe", "baseline", "fresh", "allowed", "ratio", "pass"],
        &[24, 12, 12, 12, 7, 5],
    );
    for r in &results {
        t.row(&[
            r.id.clone(),
            format!("{:.3}", r.baseline),
            r.fresh.map_or("—".into(), |f| format!("{f:.3}")),
            format!("{:.3}", r.allowed),
            r.ratio.map_or("—".into(), |x| format!("{x:.2}")),
            if r.pass { "ok" } else { "FAIL" }.into(),
        ]);
    }
    if all_pass(&results) {
        println!("\nperfgate: all {} probes within band", results.len());
    } else {
        let failed: Vec<&str> = results
            .iter()
            .filter(|r| !r.pass)
            .map(|r| r.id.as_str())
            .collect();
        eprintln!(
            "\nperfgate: REGRESSION — {} probe(s) out of band: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
