//! Batched serving: what compile-once/execute-many buys over per-run
//! compilation.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin batch [-- --json]
//! ```
//!
//! One workload (the Table 1 extremal block workload, Theorem 5.3
//! algorithm over 𝔽_p), two paths:
//!
//! * **cold** — `K` independent [`run_algorithm`] calls: every run pays
//!   triangle enumeration, schedule compilation and linking again;
//! * **warm** — one [`ScheduleCache`] lookup plus [`serve::run_batch`]:
//!   the structure-dependent work is paid once (and here not even once —
//!   the cache is primed before timing), every run pays only
//!   load + execute + verify through one reused slot-store machine.
//!
//! The headline number is amortized wall-clock per run vs `K`: the warm
//! path must flatten to the pure execution cost while the cold path stays
//! constant. A second table fans the same `K = 64` batch across worker
//! threads. With `--json`, additionally writes `results/batch.json`.

use std::time::Instant;

use lowband_bench::report::{
    budget_section, percentiles_section, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{block_workload, TablePrinter};
use lowband_core::budget::entries_for_report;
use lowband_core::densemm::DenseEngine;
use lowband_core::{compile_plan, run_algorithm, Algorithm, BatchElement, BatchMode, Instance};
use lowband_matrix::{Fp, Gf2};
use lowband_model::trace::MetricsRegistry;
use lowband_serve::{run_batch, run_batch_traced, PlanStore, ScheduleCache, StructureKey};

/// Median wall-clock of `iters` calls to `f`, in nanoseconds.
fn median_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut times = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64() * 1e9);
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

fn seeds_for(k: usize) -> Vec<u64> {
    (0..k as u64).map(|s| 1000 + s).collect()
}

fn main() {
    let mut artifact = JsonReport::new("batch");
    let inst = block_workload(4, 8);
    let algorithm = Algorithm::BoundedTriangles;
    let iters = 5usize;

    println!("# batch — amortized per-run cost, cold (compile per run) vs warm (cached plan)\n");
    println!(
        "workload: block_workload(4, 8)  n = {}  algorithm = Theorem 5.3 over F_p\n",
        inst.n
    );

    let mut cache = ScheduleCache::new(4);
    // Prime the cache: the warm path times pure execution, not the
    // one-off compile (which the cold column already exhibits).
    run_batch::<Fp>(
        &mut cache,
        &inst,
        algorithm,
        &[999],
        false,
        BatchMode::Sequential,
    )
    .expect("priming run");

    let t = TablePrinter::new(
        &["K", "cold ns/run", "warm ns/run", "warm/cold"],
        &[4, 14, 14, 9],
    );
    let mut ratio_at_kmax = f64::NAN;
    let mut kmax = 0usize;
    for k in [1usize, 4, 16, 64] {
        let seeds = seeds_for(k);
        let (cold_ns, cold_reports) = median_ns(iters, || {
            seeds
                .iter()
                .map(|&s| run_algorithm::<Fp>(&inst, algorithm, s).expect("cold run"))
                .collect::<Vec<_>>()
        });
        let (warm_ns, warm_reports) = median_ns(iters, || {
            run_batch::<Fp>(
                &mut cache,
                &inst,
                algorithm,
                &seeds,
                false,
                BatchMode::Sequential,
            )
            .expect("warm batch")
        });
        assert!(cold_reports.iter().all(|r| r.correct));
        assert!(warm_reports.iter().all(|r| r.correct));
        for (c, w) in cold_reports.iter().zip(&warm_reports) {
            assert_eq!((c.rounds, c.messages), (w.rounds, w.messages));
        }
        let cold_per_run = cold_ns / k as f64;
        let warm_per_run = warm_ns / k as f64;
        let ratio = warm_per_run / cold_per_run;
        if k >= kmax {
            kmax = k;
            ratio_at_kmax = ratio;
        }
        artifact.section(
            "amortized",
            Json::Arr(vec![Json::obj()
                .set("semiring", "Fp")
                .set("lanes", 1u64)
                .set("k", k as u64)
                .set("cold_ns_per_run", cold_per_run)
                .set("warm_ns_per_run", warm_per_run)
                .set("warm_over_cold", ratio)]),
        );
        t.row(&[
            k.to_string(),
            format!("{cold_per_run:.0}"),
            format!("{warm_per_run:.0}"),
            format!("{ratio:.3}"),
        ]);
    }
    println!(
        "\nthe cold column is flat (every run recompiles); the warm column is the\n\
         execution floor. At K = {kmax} the cached path costs {:.0}% of the cold path.",
        ratio_at_kmax * 100.0
    );
    assert!(
        ratio_at_kmax <= 0.5,
        "warm amortized cost must be <= 0.5x cold at K = {kmax}, got {ratio_at_kmax:.3}"
    );

    parallel_fanout(&mut artifact, &inst, algorithm, iters);
    packed_lanes(&mut artifact, &inst, algorithm, iters);
    plan_store_triple(&mut artifact);

    // One traced warm batch (outside the timing loops) populates the
    // per-request latency histogram and pins the executed rounds/messages
    // under the Lemma 3.1 budget.
    let mut metrics = MetricsRegistry::new();
    let traced = run_batch_traced::<Fp, _>(
        &mut cache,
        &inst,
        algorithm,
        &seeds_for(64),
        false,
        BatchMode::Sequential,
        &mut metrics,
    )
    .expect("traced warm batch");
    assert!(traced.iter().all(|r| r.correct));
    artifact.section("percentiles", percentiles_section(&metrics));
    artifact.section(
        "budget",
        budget_section(
            &entries_for_report("batch warm run", &inst, algorithm, &traced[0]),
            DEFAULT_TOLERANCE,
        ),
    );

    let s = cache.stats();
    artifact.section("cache", s.to_json());
    println!(
        "\ncache: {} hits / {} misses / {} evictions ({} of {} entries, hit rate {:.3})",
        s.hits,
        s.misses,
        s.evictions,
        s.len,
        s.capacity,
        s.hit_rate()
    );
    assert_eq!(s.misses, 1, "one structure must compile exactly once");

    artifact.finish();
}

/// The plan-store tier ladder at n = 1024: what a disk hit costs relative
/// to the cold compile it replaces and the memory hit it feeds.
///
/// * **cold** — full `compile_plan` (triangle enumeration, schedule
///   compilation, linking) from the instance;
/// * **disk** — `PlanStore::load`: read, checksum, decode and run the
///   full admission gate (`lint_linked`) on the published binser file;
/// * **warm** — a primed `ScheduleCache` memory hit.
///
/// Gated: cold ≥ disk ≥ warm and disk ≤ 0.3 × cold — the restart story
/// only holds if admission-gated loads are much cheaper than the
/// compiles they replace.
fn plan_store_triple(artifact: &mut JsonReport) {
    println!("\n# batch — plan store tiers at n = 1024: cold compile vs disk load vs memory hit\n");
    // The Table 1 extremal block workload at n = 1024 (64 dense 16×16
    // clusters, 256K triangles) under the Theorem 4.2 two-phase
    // algorithm — the regime the persistent tier exists for: the compile
    // pays triangle enumeration, cluster extraction and the compression
    // re-schedule, while the disk hit pays a linear decode + admission
    // lint of the finished plan.
    let inst = block_workload(64, 16);
    let algorithm = Algorithm::TwoPhase {
        d: 16,
        engine: DenseEngine::Cube3d,
    };
    let compress = true;
    let key = StructureKey::of(&inst, algorithm, compress);
    let iters = 3usize;

    let (cold_ns, plan) = median_ns(iters, || {
        compile_plan(&inst, algorithm, compress).expect("cold compile")
    });

    let root = std::env::temp_dir().join(format!("lowband-batch-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = PlanStore::open(&root).expect("open plan store");
    let file_bytes = store.save(key, &plan).expect("publish plan");
    let (disk_ns, loaded) = median_ns(iters, || {
        store
            .load(key)
            .expect("gate passes")
            .expect("published plan loads")
    });
    assert_eq!(
        loaded.schedule, plan.schedule,
        "disk tier must return the published plan"
    );

    let mut cache = ScheduleCache::with_store(4, store);
    cache
        .get_or_compile(&inst, algorithm, compress)
        .expect("prime from disk");
    let (warm_ns, _) = median_ns(iters, || {
        cache
            .get_or_compile(&inst, algorithm, compress)
            .expect("memory hit")
    });
    let s = cache.stats();
    assert_eq!(
        (s.compiles, s.disk_hits),
        (0, 1),
        "priming must come from the disk tier, not a compile: {s:?}"
    );
    let _ = std::fs::remove_dir_all(&root);

    let disk_over_cold = disk_ns / cold_ns;
    let warm_over_cold = warm_ns / cold_ns;
    let t = TablePrinter::new(&["tier", "ns", "vs cold"], &[6, 14, 9]);
    for (tier, ns) in [("cold", cold_ns), ("disk", disk_ns), ("warm", warm_ns)] {
        t.row(&[
            tier.to_string(),
            format!("{ns:.0}"),
            format!("{:.4}", ns / cold_ns),
        ]);
    }
    println!(
        "\na disk hit (read + checksum + decode + lint) costs {:.1}% of the cold\n\
         compile it replaces ({} bytes on disk); a memory hit costs {:.2}%.",
        disk_over_cold * 100.0,
        file_bytes,
        warm_over_cold * 100.0
    );
    artifact.section(
        "plan_store",
        Json::obj()
            .set("n", 1024u64)
            .set("cold_ns", cold_ns)
            .set("disk_ns", disk_ns)
            .set("warm_ns", warm_ns)
            .set("disk_over_cold", disk_over_cold)
            .set("warm_over_cold", warm_over_cold)
            .set("file_bytes", file_bytes),
    );
    assert!(
        cold_ns >= disk_ns && disk_ns >= warm_ns,
        "tier ordering must be cold >= disk >= warm: {cold_ns:.0} / {disk_ns:.0} / {warm_ns:.0}"
    );
    assert!(
        disk_over_cold <= 0.3,
        "disk load must be <= 0.3x cold compile at n = 1024, got {disk_over_cold:.3}"
    );
}

/// The same K = 64 batch fanned across worker threads — each worker owns a
/// machine and streams its contiguous share of the seeds.
fn parallel_fanout(artifact: &mut JsonReport, inst: &Instance, algorithm: Algorithm, iters: usize) {
    println!("\n# batch — K = 64 fanned across worker threads\n");
    let seeds = seeds_for(64);
    let mut cache = ScheduleCache::new(4);
    let t = TablePrinter::new(&["threads", "ns/run", "vs 1 thread"], &[8, 14, 11]);
    let mut base = f64::NAN;
    for threads in [1usize, 2, 4] {
        let mode = if threads == 1 {
            BatchMode::Sequential
        } else {
            BatchMode::Parallel { threads }
        };
        let (ns, reports) = median_ns(iters, || {
            run_batch::<Fp>(&mut cache, inst, algorithm, &seeds, false, mode)
                .expect("parallel batch")
        });
        assert!(reports.iter().all(|r| r.correct));
        let per_run = ns / seeds.len() as f64;
        if threads == 1 {
            base = per_run;
        }
        artifact.section(
            "parallel",
            Json::Arr(vec![Json::obj()
                .set("semiring", "Fp")
                .set("lanes", 1u64)
                .set("threads", threads as u64)
                .set("ns_per_run", per_run)
                .set("speedup", base / per_run)]),
        );
        t.row(&[
            threads.to_string(),
            format!("{per_run:.0}"),
            format!("{:.2}×", base / per_run),
        ]);
    }
}

/// The same K = 64 batch through struct-of-arrays lane planes: one
/// interpretation of the cached schedule advances all lanes at once, so
/// per-member decode cost falls by `1/LANES`. Per-member ns is printed
/// side by side with the sequential and thread-fanned paths for the same
/// semiring; the `Fp` packed/sequential ratio is the asserted gate, the
/// bit-sliced `Gf2` ratio (64 members per `u64`) is reported alongside.
fn packed_lanes(artifact: &mut JsonReport, inst: &Instance, algorithm: Algorithm, iters: usize) {
    println!("\n# batch — K = 64 through packed lane planes (warm cache)\n");
    let seeds = seeds_for(64);
    let t = TablePrinter::new(
        &["semiring", "mode", "lanes", "ns/member", "vs sequential"],
        &[8, 12, 5, 14, 13],
    );

    let mut gate_ratio = f64::NAN;
    let mut gate_lanes = 0usize;
    for semiring in ["Fp", "Gf2"] {
        // Measure the three warm modes for one value type; returns
        // (mode label, lanes, ns/member) rows in print order.
        let rows: Vec<(&str, usize, f64)> = match semiring {
            "Fp" => measure_modes::<Fp>(inst, algorithm, &seeds, iters, true),
            _ => measure_modes::<Gf2>(inst, algorithm, &seeds, iters, false),
        };
        let seq_ns = rows[0].2;
        for &(mode, lanes, ns) in &rows {
            let ratio = ns / seq_ns;
            artifact.section(
                "packed",
                Json::Arr(vec![Json::obj()
                    .set("semiring", semiring)
                    .set("mode", mode)
                    .set("lanes", lanes as u64)
                    .set("k", seeds.len() as u64)
                    .set("ns_per_member", ns)
                    .set("vs_sequential", ratio)]),
            );
            t.row(&[
                semiring.to_string(),
                mode.to_string(),
                lanes.to_string(),
                format!("{ns:.0}"),
                format!("{ratio:.3}"),
            ]);
            if mode == "packed" && semiring == "Fp" {
                gate_ratio = ratio;
                gate_lanes = lanes;
            }
        }
    }
    println!(
        "\none schedule decode drives all lanes: the packed F_p path costs\n\
         {:.0}% of the sequential warm path per member at {gate_lanes} lanes \
         (gate: <= 50%).",
        gate_ratio * 100.0
    );
    assert!(
        gate_ratio <= 0.5,
        "packed per-member cost must be <= 0.5x sequential at K = 64 for Fp, \
         got {gate_ratio:.3} at {gate_lanes} lanes"
    );
}

/// Warm per-member ns for sequential / parallel(4) / packed over one value
/// type, in that row order (sequential first so callers can normalize).
fn measure_modes<S: BatchElement>(
    inst: &Instance,
    algorithm: Algorithm,
    seeds: &[u64],
    iters: usize,
    with_parallel: bool,
) -> Vec<(&'static str, usize, f64)> {
    let mut cache = ScheduleCache::new(4);
    run_batch::<S>(
        &mut cache,
        inst,
        algorithm,
        &seeds[..1],
        false,
        BatchMode::Sequential,
    )
    .expect("priming run");
    // Widest plane that still fits comfortably in cache (16 × u64 = two
    // cache lines per slot; 32-lane planes already thrash L1 here),
    // falling back to whatever the type supports (bit-sliced types only
    // compile the 64-member word).
    let lanes = S::LANE_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= 16)
        .max()
        .unwrap_or(*S::LANE_WIDTHS.last().expect("non-empty width menu"));
    let mut modes: Vec<(&'static str, usize, BatchMode)> =
        vec![("sequential", 1, BatchMode::Sequential)];
    if with_parallel {
        modes.push(("parallel(4)", 1, BatchMode::Parallel { threads: 4 }));
    }
    modes.push(("packed", lanes, BatchMode::Packed { lanes }));

    // Interleave the modes round-robin so a noisy stretch of wall-clock
    // (this box is shared) inflates every mode's samples equally instead
    // of biasing whichever mode happened to be measured during it; the
    // per-mode median then compares like with like.
    let reps = iters * 2 + 1;
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); modes.len()];
    for _ in 0..reps {
        for (m, &(_, _, mode)) in modes.iter().enumerate() {
            let t0 = Instant::now();
            let reports = run_batch::<S>(&mut cache, inst, algorithm, seeds, false, mode)
                .expect("warm batch");
            samples[m].push(t0.elapsed().as_secs_f64() * 1e9);
            assert!(reports.iter().all(|r| r.correct));
        }
    }
    modes
        .iter()
        .zip(&mut samples)
        .map(|(&(label, lanes, _), times)| {
            times.sort_by(f64::total_cmp);
            (label, lanes, times[times.len() / 2] / seeds.len() as f64)
        })
        .collect()
}
