//! `check` — lint every pipeline schedule, then fuzz the executors.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin check [-- OPTIONS]
//!
//! --seeds N      differential fuzz seeds to run (default 64)
//! --start N      first fuzz seed (default 0)
//! --lint-only    skip the fuzzer
//! --fuzz-only    skip the pipeline lint
//! ```
//!
//! **Lint mode** recompiles the schedules behind the table 1–4 / figure 1 /
//! experiments / recovery pipelines (every algorithm family: trivial,
//! bounded-triangles, two-phase, dense cube, Strassen, plus the
//! capacity-`c` routed schedules of the model-comparison experiment) and
//! runs the `lowband-check` static linter over each schedule, its
//! compressed form, and the linked forms of both. The preloaded-key
//! predicate is derived from the instance placement — exactly what
//! `Instance::load_values` provides at run time.
//!
//! **Fuzz mode** runs the seeded cross-executor differential battery
//! ([`lowband_check::fuzz_range`]): every seed's schedule (and its
//! compressed form) must produce bit-identical stores and stats on all
//! executor backends, including windowed checkpoint/restore chains that
//! migrate state across backends mid-run.
//!
//! Exit status is non-zero if any lint *error* (warnings pass) or any
//! fuzz failure is found.

use lowband_bench::{
    bd_as_as_workload, block_workload, mixed_workload, scattered_workload, us_as_gm_workload,
};
use lowband_check::{fuzz_range, lint_linked, lint_schedule, LintOptions};
use lowband_core::densemm::DenseEngine;
use lowband_core::{compile_schedule, Algorithm, Instance, TriangleSet};
use lowband_model::key::KeyKind;
use lowband_model::{compress, link, Key, NodeId, Schedule};

/// The preloaded-key predicate of a compiled pipeline: exactly the `A`
/// and `B` entries `Instance::load_values` places, at the nodes the
/// placement assigns them to.
fn instance_preloaded(inst: &Instance) -> impl Fn(NodeId, Key) -> bool + '_ {
    move |node, key| {
        let (i, j) = (key.fst(), key.snd());
        if i >= inst.n as u64 || j >= inst.n as u64 {
            return false;
        }
        let (i, j) = (i as u32, j as u32);
        match key.kind() {
            KeyKind::A => inst.ahat.contains(i, j) && inst.placement.a.owner(i, j) == node,
            KeyKind::B => inst.bhat.contains(i, j) && inst.placement.b.owner(i, j) == node,
            _ => false,
        }
    }
}

/// Lint one schedule in all four forms (plain, compressed, and both
/// linked). Prints one status line and returns the number of lint
/// errors (warnings are reported but don't fail).
fn lint_artifact(name: &str, schedule: &Schedule, inst: &Instance) -> usize {
    let preloaded = instance_preloaded(inst);
    let opts = LintOptions::with_preloaded(&preloaded);
    let mut errors = 0;
    let mut warnings = 0;

    let compressed = compress(schedule);
    for (form, s) in [("plain", schedule), ("compressed", &compressed)] {
        let mut report = lint_schedule(s, &opts);
        match link(s) {
            Ok(linked) => report.merge(lint_linked(s, &linked)),
            Err(e) => {
                println!("  FAIL {name} [{form}]: linking failed: {e}");
                errors += 1;
                continue;
            }
        }
        for v in report.errors() {
            println!("  FAIL {name} [{form}]: {v}");
        }
        for v in report.warnings() {
            println!("  warn {name} [{form}]: {v}");
        }
        errors += report.errors().count();
        warnings += report.warnings().count();
    }
    let status = if errors > 0 { "FAIL" } else { "ok" };
    println!(
        "{status:>4}  {name}: {} rounds, {} messages, capacity {}, {errors} errors, {warnings} warnings",
        schedule.rounds(),
        schedule.messages(),
        schedule.capacity(),
    );
    errors
}

fn full_instance(n: usize) -> Instance {
    let full = lowband_matrix::Support::full(n, n);
    Instance::balanced(full.clone(), full.clone(), full)
}

/// The routed schedules of the experiments model-comparison sweep
/// (`route_with_capacity` at capacity 1, `log n`, `n`) — the pipeline's
/// only capacity-`c > 1` schedules.
fn routed_schedules(inst: &Instance) -> Vec<(String, Schedule)> {
    let n = inst.n;
    let ts = TriangleSet::enumerate(inst);
    let mut messages = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for tri in &ts.triangles {
        let consumer = inst.placement.x.owner(tri.i, tri.k);
        let src = inst.placement.b.owner(tri.j, tri.k);
        if src != consumer && seen.insert((tri.j, tri.k, consumer)) {
            messages.push(lowband_routing::router::msg(
                src,
                Key::b(tri.j as u64, tri.k as u64),
                consumer,
                Key::b(tri.j as u64, tri.k as u64),
            ));
        }
    }
    let log_n = (n as f64).log2().ceil() as usize;
    [1usize, log_n, n]
        .into_iter()
        .map(|cap| {
            let s = lowband_routing::route_with_capacity(n, cap, &messages)
                .expect("routable message set");
            (format!("experiments: routed capacity {cap}"), s)
        })
        .collect()
}

fn lint_pipelines() -> usize {
    println!("## Pipeline schedule lint\n");
    let cases: Vec<(&str, Instance, Algorithm)> = vec![
        (
            "table1: Lemma 3.1 on block(4,8)",
            block_workload(4, 8),
            Algorithm::BoundedTriangles,
        ),
        (
            "table1: dense cube n=16",
            full_instance(16),
            Algorithm::DenseCube,
        ),
        (
            "table1: strassen n=16",
            full_instance(16),
            Algorithm::StrassenField,
        ),
        (
            "table2: two-phase mixed(8,d=8)",
            mixed_workload(8, 8, 7),
            Algorithm::TwoPhase {
                d: 10,
                engine: DenseEngine::Cube3d,
            },
        ),
        (
            "table2: bounded [US:AS:GM] n=64",
            us_as_gm_workload(64, 3, 8),
            Algorithm::BoundedTriangles,
        ),
        (
            "table2: bounded [BD:AS:AS] n=64",
            bd_as_as_workload(64, 3, 10),
            Algorithm::BoundedTriangles,
        ),
        (
            "experiments: trivial scattered(128,8)",
            scattered_workload(128, 8, 60),
            Algorithm::Trivial,
        ),
        (
            "experiments: bounded scattered(128,8)",
            scattered_workload(128, 8, 60),
            Algorithm::BoundedTriangles,
        ),
        (
            "figure1/recovery: bounded scattered(128,6)",
            scattered_workload(128, 6, 77),
            Algorithm::BoundedTriangles,
        ),
    ];

    let mut errors = 0;
    for (name, inst, algorithm) in &cases {
        match compile_schedule(inst, *algorithm) {
            Ok(schedule) => errors += lint_artifact(name, &schedule, inst),
            Err(e) => {
                println!("FAIL  {name}: compilation failed: {e}");
                errors += 1;
            }
        }
    }

    let routed_inst = scattered_workload(64, 8, 50);
    for (name, schedule) in routed_schedules(&routed_inst) {
        errors += lint_artifact(&name, &schedule, &routed_inst);
    }
    errors
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 64u64;
    let mut start = 0u64;
    let mut do_lint = true;
    let mut do_fuzz = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            "--start" => {
                start = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--start takes a number");
            }
            "--lint-only" => do_fuzz = false,
            "--fuzz-only" => do_lint = false,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    println!("# lowband-check\n");
    let mut failed = false;

    if do_lint {
        let errors = lint_pipelines();
        if errors > 0 {
            println!("\npipeline lint: {errors} errors");
            failed = true;
        } else {
            println!("\npipeline lint: clean");
        }
    }

    if do_fuzz {
        println!("\n## Differential fuzz ({seeds} seeds from {start})\n");
        let report = fuzz_range(start, seeds);
        for f in &report.failures {
            println!("{f}\n");
        }
        if report.is_clean() {
            println!("fuzz: {} seeds clean", report.seeds);
        } else {
            println!(
                "fuzz: {} failures in {} seeds",
                report.failures.len(),
                report.seeds
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}
