//! Supplementary experiments E6–E10 (see DESIGN.md §4): the per-lemma
//! round-count measurements backing EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin experiments [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/experiments.json`.

use lowband_bench::report::{
    budget_section, percentiles_section, Json, JsonReport, DEFAULT_TOLERANCE,
};
use lowband_bench::{
    bd_as_as_workload, block_workload, fit_exponent, lemma31_rounds, scattered_workload,
    us_as_gm_workload, TablePrinter,
};
use lowband_core::budget::{entries_for_observed, entries_for_report};
use lowband_core::optimizer::{schedule, Phase2, LAMBDA_SEMIRING};
use lowband_core::{compile_schedule, Algorithm, Instance, TriangleSet};
use lowband_matrix::{Fp, Support};
use lowband_model::trace::MetricsRegistry;

fn main() {
    let mut artifact = JsonReport::new("experiments");
    e6_lemma31_scaling(&mut artifact);
    e6b_prior_phase2_comparison(&mut artifact);
    e7_general_cases_shape(&mut artifact);
    e9_routing_gap(&mut artifact);
    e10_ablation_coloring(&mut artifact);
    e11_model_comparison(&mut artifact);
    e12_compression_ablation(&mut artifact);
    observability(&mut artifact);
    artifact.finish();
}

/// Observability tail: one traced end-to-end run feeds the `percentiles`
/// section, and the compiled schedules of representative E-workloads are
/// pinned under the analytic round/message predictions in `budget`.
fn observability(artifact: &mut JsonReport) {
    let mut metrics = MetricsRegistry::new();
    let inst = us_as_gm_workload(64, 3, 61);
    let report = lowband_core::run_algorithm_traced::<Fp, _>(
        &inst,
        Algorithm::BoundedTriangles,
        21,
        false,
        &mut metrics,
    )
    .unwrap();
    assert!(report.correct);
    let mut budget = entries_for_report(
        "experiments [US:AS:GM] d=3",
        &inst,
        Algorithm::BoundedTriangles,
        &report,
    );
    for (label, inst) in [
        ("experiments block d=8", block_workload(4, 8)),
        ("experiments scattered d=8", scattered_workload(128, 8, 60)),
    ] {
        let s = compile_schedule(&inst, Algorithm::BoundedTriangles).unwrap();
        budget.extend(entries_for_observed(
            label,
            &inst,
            Algorithm::BoundedTriangles,
            s.rounds(),
            s.messages(),
            s.capacity(),
        ));
    }
    artifact.section("percentiles", percentiles_section(&metrics));
    artifact.section("budget", budget_section(&budget, DEFAULT_TOLERANCE));
}

/// E12 (ablation): dataflow round compression — pipelining the phases of a
/// compiled algorithm (extension beyond the paper; semantics verified by
/// property tests).
fn e12_compression_ablation(artifact: &mut JsonReport) {
    println!("\n# E12 — ablation: phase-sequential schedules vs dataflow compression\n");
    let t = TablePrinter::new(
        &["workload", "algorithm", "rounds", "compressed", "saving"],
        &[16, 12, 8, 12, 8],
    );
    let cases: Vec<(String, lowband_core::Instance)> = vec![
        ("block d=8".into(), block_workload(4, 8)),
        ("block d=16".into(), block_workload(4, 16)),
        ("scattered d=8".into(), scattered_workload(128, 8, 60)),
        ("[US:AS:GM] d=3".into(), us_as_gm_workload(64, 3, 61)),
    ];
    for (name, inst) in cases {
        let ts = TriangleSet::enumerate(&inst);
        let schedule =
            lowband_core::lemma31::process_triangles(&inst, &ts.triangles, ts.kappa(inst.n), 0)
                .unwrap();
        let compressed = lowband_model::compress(&schedule);
        artifact.section(
            "e12_compression",
            Json::Arr(vec![Json::obj()
                .set("workload", name.as_str())
                .set("rounds", schedule.rounds())
                .set("compressed_rounds", compressed.rounds())]),
        );
        t.row(&[
            name,
            "Lemma 3.1".into(),
            schedule.rounds().to_string(),
            compressed.rounds().to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - compressed.rounds() as f64 / schedule.rounds().max(1) as f64)
            ),
        ]);
    }
    println!(
        "\ncompression overlaps the A-, B- and X-phases of Lemma 3.1 wherever the\n\
         dataflow allows; the asymptotic exponents are unchanged (it can save at most\n\
         the number of phases × their depth), but the constant shrinks for free."
    );
}

/// E11: low-bandwidth vs node-capacitated clique (§1.5) — the same message
/// set, routed at capacities 1, ⌈log₂ n⌉ and n.
fn e11_model_comparison(artifact: &mut JsonReport) {
    println!("\n# E11 — model comparison: low-bandwidth vs node-capacitated clique (§1.5)\n");
    let n = 128usize;
    let log_n = (n as f64).log2().ceil() as usize;
    let t = TablePrinter::new(
        &["workload", "capacity", "rounds", "vs cap 1"],
        &[14, 12, 8, 9],
    );
    for d in [8usize, 16] {
        let inst = scattered_workload(n, d, 50);
        let ts = TriangleSet::enumerate(&inst);
        let mut messages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for tri in &ts.triangles {
            let consumer = inst.placement.x.owner(tri.i, tri.k);
            let src = inst.placement.b.owner(tri.j, tri.k);
            if src != consumer && seen.insert((tri.j, tri.k, consumer)) {
                messages.push(lowband_routing::router::msg(
                    src,
                    lowband_model::Key::b(tri.j as u64, tri.k as u64),
                    consumer,
                    lowband_model::Key::b(tri.j as u64, tri.k as u64),
                ));
            }
        }
        let base = lowband_routing::route(n, &messages).unwrap().rounds();
        for (label, cap) in [
            ("low-bandwidth", 1usize),
            ("NCC(log n)", log_n),
            ("congested clique", n),
        ] {
            let rounds = lowband_routing::route_with_capacity(n, cap, &messages)
                .unwrap()
                .rounds();
            artifact.section(
                "e11_model_comparison",
                Json::Arr(vec![Json::obj()
                    .set("d", d)
                    .set("model", label)
                    .set("capacity", cap)
                    .set("rounds", rounds)
                    .set("base_rounds", base)]),
            );
            t.row(&[
                format!("fetch d={d}"),
                label.into(),
                rounds.to_string(),
                format!("{:.2}×", base as f64 / rounds.max(1) as f64),
            ]);
        }
    }
    println!(
        "\nthe capacity-c model simulates the low-bandwidth schedule c× faster — the\n\
         relationship the paper uses to place itself between NCC and congested clique,\n\
         and why sparse MM is only interesting below NCC bandwidth (≈O(1) rounds there)."
    );
}

/// E6: Lemma 3.1's O(κ + d + log m) — sweep each term separately.
fn e6_lemma31_scaling(artifact: &mut JsonReport) {
    println!("# E6 — Lemma 3.1 cost model O(κ + d + log m)\n");

    println!("## κ sweep (block workload, κ = d², d and log m grow slowly)\n");
    let t = TablePrinter::new(&["d", "κ", "rounds", "rounds/κ"], &[4, 8, 8, 9]);
    let mut pts = Vec::new();
    for d in [4usize, 8, 16, 32] {
        let inst = block_workload(4, d);
        let ts = TriangleSet::enumerate(&inst);
        let kappa = ts.kappa(inst.n);
        let rounds = lemma31_rounds(&inst, None);
        pts.push((kappa as f64, rounds as f64));
        artifact.section(
            "e6_kappa_sweep",
            Json::Arr(vec![Json::obj()
                .set("d", d)
                .set("kappa", kappa)
                .set("rounds", rounds)]),
        );
        t.row(&[
            d.to_string(),
            kappa.to_string(),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / kappa as f64),
        ]);
    }
    let (e, _) = fit_exponent(&pts).expect("κ sweep has positive rounds");
    println!("\nrounds vs κ fitted exponent: {e:.3} (theory: 1.0 — linear in κ)\n");
    artifact.section("e6_kappa_fit", Json::obj().set("exponent", e));

    println!("## log m sweep (single heavy pair: m triangles share one edge)\n");
    let t = TablePrinter::new(&["n = m", "rounds", "⌈log₂ m⌉"], &[8, 8, 10]);
    for n in [32usize, 128, 512, 2048] {
        // Triangles (i, 0, 0): pair (j,k) = (0,0) has multiplicity n.
        let ahat = Support::from_entries(n, n, (0..n as u32).map(|i| (i, 0)));
        let bhat = Support::from_entries(n, n, vec![(0, 0)]);
        let xhat = Support::from_entries(n, n, (0..n as u32).map(|i| (i, 0)));
        let inst = Instance::balanced(ahat, bhat, xhat);
        let rounds = lemma31_rounds(&inst, None);
        artifact.section(
            "e6_logm_sweep",
            Json::Arr(vec![Json::obj()
                .set("n", n)
                .set("rounds", rounds)
                .set("log2_m", ((n as f64).log2()).ceil() as usize)]),
        );
        t.row(&[
            n.to_string(),
            rounds.to_string(),
            (((n as f64).log2()).ceil() as usize).to_string(),
        ]);
    }
    println!();
}

/// E6b: the headline Lemma 3.1 improvement — d^{2−ε} vs prior d^{2−ε/2}
/// residual processing, from the cost models both papers prove.
fn e6b_prior_phase2_comparison(artifact: &mut JsonReport) {
    println!("# E6b — phase-2 cost: this work vs SPAA 2022 (analytic, Lemma 3.1 vs Lemma 5.1)\n");
    let t = TablePrinter::new(
        &[
            "residual d^(2−ε)n: ε",
            "prior d^(2−ε/2)",
            "ours d^(2−ε)",
            "speedup @ d=10⁴",
        ],
        &[20, 16, 14, 16],
    );
    for eps in [0.1f64, 0.2, 0.4, 0.667] {
        let d: f64 = 1e4;
        let prior = d.powf(2.0 - eps / 2.0);
        let ours = d.powf(2.0 - eps);
        t.row(&[
            format!("{eps:.3}"),
            format!("d^{:.3}", 2.0 - eps / 2.0),
            format!("d^{:.3}", 2.0 - eps),
            format!("{:.1}×", prior / ours),
        ]);
    }
    let ours = schedule(LAMBDA_SEMIRING, 0.00001, 1.867, Phase2::ThisWork);
    let prior = schedule(LAMBDA_SEMIRING, 0.00001, 1.926, Phase2::PriorWork);
    println!(
        "\nbalanced end-to-end exponents: ours {:.3} (ε* = {:.4}) vs prior {:.3} (ε* = {:.4})\n",
        ours.exponent,
        ours.steps.last().unwrap().eps,
        prior.exponent,
        prior.steps.last().unwrap().eps
    );
    artifact.section(
        "e6b_phase2",
        Json::obj()
            .set("our_exponent", ours.exponent)
            .set("our_eps", ours.steps.last().unwrap().eps)
            .set("prior_exponent", prior.exponent)
            .set("prior_eps", prior.steps.last().unwrap().eps),
    );
}

/// E7: the O(d² + log n) shape of Theorems 5.3/5.11 — d sweep at fixed n,
/// n sweep at fixed d.
fn e7_general_cases_shape(artifact: &mut JsonReport) {
    println!("# E7 — Theorems 5.3/5.11: O(d² + log n) shape\n");
    println!("## d sweep at n = 96\n");
    let t = TablePrinter::new(
        &["task", "d", "κ", "rounds", "rounds/d²"],
        &[12, 4, 6, 8, 10],
    );
    let mut pts = Vec::new();
    for d in [2usize, 4, 8] {
        let inst = us_as_gm_workload(96, d, 20 + d as u64);
        let ts = TriangleSet::enumerate(&inst);
        let rounds = lemma31_rounds(&inst, None);
        pts.push((d as f64, rounds as f64));
        artifact.section(
            "e7_d_sweep",
            Json::Arr(vec![Json::obj()
                .set("task", "[US:AS:GM]")
                .set("d", d)
                .set("kappa", ts.kappa(inst.n))
                .set("rounds", rounds)]),
        );
        t.row(&[
            "[US:AS:GM]".into(),
            d.to_string(),
            ts.kappa(inst.n).to_string(),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / (d * d) as f64),
        ]);
    }
    let (e, _) = fit_exponent(&pts).expect("d sweep has positive rounds");
    println!("\nfitted exponent vs d: {e:.3} (theory: 2.0)\n");
    artifact.section("e7_d_fit", Json::obj().set("exponent", e));

    println!("## n sweep at d = 3 (additive log n term)\n");
    let t = TablePrinter::new(&["task", "n", "rounds"], &[12, 6, 8]);
    for n in [48usize, 96, 192, 384] {
        let inst = bd_as_as_workload(n, 3, 30);
        let rounds = lemma31_rounds(&inst, None);
        artifact.section(
            "e7_n_sweep",
            Json::Arr(vec![Json::obj()
                .set("task", "[BD:AS:AS]")
                .set("n", n)
                .set("rounds", rounds)]),
        );
        t.row(&["[BD:AS:AS]".into(), n.to_string(), rounds.to_string()]);
    }
    println!("\nrounds stay nearly flat in n (the log n term), as Theorem 5.11 predicts.\n");
}

/// E9: the √n gap — certified lower bound vs executed upper bound on the
/// routing gadgets.
fn e9_routing_gap(artifact: &mut JsonReport) {
    println!("# E9 — Theorem 6.27 gadgets: certificate vs executed algorithm\n");
    let t = TablePrinter::new(
        &["gadget", "n", "√n", "certified LB", "executed UB", "UB/n"],
        &[12, 6, 6, 13, 12, 6],
    );
    for n in [64usize, 144, 256] {
        for (name, g) in [
            ("US×GM=GM", lowband_lower::gadgets::us_gm_gadget(n)),
            ("RS×CS=GM", lowband_lower::gadgets::rs_cs_gadget(n)),
        ] {
            let cert = lowband_lower::max_foreign_values(&g);
            let ub = lemma31_rounds(&g, None);
            artifact.section(
                "e9_routing_gap",
                Json::Arr(vec![Json::obj()
                    .set("gadget", name)
                    .set("n", n)
                    .set("certified_lb", cert)
                    .set("executed_ub", ub)]),
            );
            t.row(&[
                name.into(),
                n.to_string(),
                ((n as f64).sqrt() as usize).to_string(),
                cert.to_string(),
                ub.to_string(),
                format!("{:.1}", ub as f64 / n as f64),
            ]);
        }
    }
    println!("\nboth gadgets sit in the Ω(√n)…O(n·polylog) window the paper leaves open.\n");

    println!("## the placement game: the certificate vs the friendliest output placement\n");
    let t = TablePrinter::new(&["placement", "n", "√n", "certified LB"], &[20, 6, 6, 13]);
    for n in [64usize, 256] {
        let balanced = lowband_lower::gadgets::us_gm_gadget(n);
        let square = lowband_lower::gadgets::with_square_block_output(
            lowband_lower::gadgets::us_gm_gadget(n),
        );
        let lb_balanced = lowband_lower::max_foreign_values(&balanced);
        let lb_square = lowband_lower::max_foreign_values(&square);
        artifact.section(
            "e9_placement_game",
            Json::Arr(vec![Json::obj()
                .set("n", n)
                .set("balanced_lb", lb_balanced)
                .set("square_block_lb", lb_square)]),
        );
        t.row(&[
            "balanced rows".into(),
            n.to_string(),
            ((n as f64).sqrt() as usize).to_string(),
            lb_balanced.to_string(),
        ]);
        t.row(&[
            "√n×√n blocks".into(),
            n.to_string(),
            ((n as f64).sqrt() as usize).to_string(),
            lb_square.to_string(),
        ]);
    }
    println!(
        "\neven the friendliest placement cannot push the certificate below ~√n —\n\
         the pigeonhole maxcol·numcols ≥ |X^v| of Theorem 6.27's proof.\n"
    );
}

/// E10 (ablation): exact Δ edge coloring vs greedy first-fit — the design
/// choice DESIGN.md calls out for the routing substrate.
fn e10_ablation_coloring(artifact: &mut JsonReport) {
    println!("# E10 — ablation: exact Δ-edge-coloring vs greedy routing\n");
    let t = TablePrinter::new(
        &["workload", "d", "exact rounds", "greedy rounds", "overhead"],
        &[12, 4, 13, 14, 9],
    );
    for d in [4usize, 8, 16] {
        let inst = scattered_workload(128, d, 40);
        let ts = TriangleSet::enumerate(&inst);
        // Compare the raw routing phase: every consumer fetches its B
        // values (the trivial algorithm's message set) under both routers.
        let mut messages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for tri in &ts.triangles {
            let consumer = inst.placement.x.owner(tri.i, tri.k);
            let src = inst.placement.b.owner(tri.j, tri.k);
            if src != consumer && seen.insert((tri.j, tri.k, consumer)) {
                messages.push(lowband_routing::router::msg(
                    src,
                    lowband_model::Key::b(tri.j as u64, tri.k as u64),
                    consumer,
                    lowband_model::Key::b(tri.j as u64, tri.k as u64),
                ));
            }
        }
        let exact = lowband_routing::route(inst.n, &messages).unwrap().rounds();
        let greedy = lowband_routing::route_greedy(inst.n, &messages)
            .unwrap()
            .rounds();
        artifact.section(
            "e10_coloring",
            Json::Arr(vec![Json::obj()
                .set("d", d)
                .set("exact_rounds", exact)
                .set("greedy_rounds", greedy)]),
        );
        t.row(&[
            "scattered US".into(),
            d.to_string(),
            exact.to_string(),
            greedy.to_string(),
            format!("{:.2}×", greedy as f64 / exact.max(1) as f64),
        ]);
    }
    println!("\ngreedy is within 2× (König guarantees exact = Δ; greedy ≤ 2Δ−1).");
}
