//! Regenerate **Table 4** — the field parameter schedule of Lemma 4.13 —
//! plus the implementable-Strassen variant.
//!
//! ```text
//! cargo run -p lowband-bench --release --bin table4 [-- --json]
//! ```
//!
//! With `--json`, additionally writes `results/table4.json`.

use std::time::Instant;

use lowband_bench::report::{
    budget_section, reservoir_section, BudgetEntry, Json, JsonReport, Reservoir, DEFAULT_TOLERANCE,
};
use lowband_bench::TablePrinter;
use lowband_core::optimizer::{
    lambda_field, optimal_schedule, schedule, Phase2, OMEGA_PAPER, OMEGA_STRASSEN,
};

const PAPER: [(f64, f64, f64, f64, f64); 4] = [
    (0.00001, 0.00000, 0.13505, 1.83197, 1.86495),
    (0.00001, 0.13505, 0.16206, 1.83197, 1.83794),
    (0.00001, 0.16206, 0.16746, 1.83196, 1.83254),
    (0.00001, 0.16746, 0.16854, 1.83196, 1.83146),
];

fn main() {
    let mut artifact = JsonReport::new("table4");
    println!("# Table 4 — parameters for the proof of Lemma 4.13 (fields)\n");
    println!(
        "λ = 2 − 2/ω = {:.6} with ω = {OMEGA_PAPER} [23]; A = 1.832\n",
        lambda_field(OMEGA_PAPER)
    );
    // Reservoir-timed recurrence evaluation (no simulated runs here) for
    // the `percentiles` section, as in `table3`.
    let mut eval_ns = Reservoir::new(64);
    for _ in 0..64 {
        let t0 = Instant::now();
        std::hint::black_box(schedule(
            lambda_field(OMEGA_PAPER),
            0.00001,
            1.832,
            Phase2::ThisWork,
        ));
        eval_ns.record(t0.elapsed().as_nanos() as u64);
    }
    let s = schedule(lambda_field(OMEGA_PAPER), 0.00001, 1.832, Phase2::ThisWork);
    let t = TablePrinter::new(
        &["step", "δ", "γ", "ε", "α", "β", "paper ε", "|Δε|"],
        &[4, 8, 8, 8, 8, 8, 8, 9],
    );
    let mut max_dev = 0.0f64;
    for (i, row) in s.steps.iter().enumerate() {
        let paper_eps = PAPER.get(i).map(|p| p.2).unwrap_or(f64::NAN);
        max_dev = max_dev.max((row.eps - paper_eps).abs());
        artifact.section(
            "steps",
            Json::Arr(vec![Json::obj()
                .set("step", i + 1)
                .set("delta", row.delta)
                .set("gamma", row.gamma)
                .set("eps", row.eps)
                .set("alpha", row.alpha)
                .set("beta", row.beta)
                .set("paper_eps", paper_eps)
                .set("eps_deviation", (row.eps - paper_eps).abs())]),
        );
        t.row(&[
            (i + 1).to_string(),
            format!("{:.5}", row.delta),
            format!("{:.5}", row.gamma),
            format!("{:.5}", row.eps),
            format!("{:.5}", row.alpha),
            format!("{:.5}", row.beta),
            format!("{paper_eps:.5}"),
            format!("{:.1e}", (row.eps - paper_eps).abs()),
        ]);
    }
    assert_eq!(s.steps.len(), 4, "paper's Table 4 has four steps");
    println!("\nmax ε deviation from the paper's printed table: {max_dev:.2e}");

    println!("\n## Implementable variant: Strassen's ω = {OMEGA_STRASSEN}\n");
    let strassen = optimal_schedule(lambda_field(OMEGA_STRASSEN), 0.00001, Phase2::ThisWork);
    println!(
        "λ = {:.4} ⇒ minimal feasible exponent {:.3} (between the paper's semiring\n\
         1.867 and galactic-field 1.832) — the engine a real deployment could run.",
        lambda_field(OMEGA_STRASSEN),
        strassen.exponent
    );
    let t = TablePrinter::new(&["step", "γ", "ε", "α", "β"], &[4, 8, 8, 8, 8]);
    for (i, row) in strassen.steps.iter().enumerate() {
        artifact.section(
            "strassen_steps",
            Json::Arr(vec![Json::obj()
                .set("step", i + 1)
                .set("gamma", row.gamma)
                .set("eps", row.eps)
                .set("alpha", row.alpha)
                .set("beta", row.beta)]),
        );
        t.row(&[
            (i + 1).to_string(),
            format!("{:.5}", row.gamma),
            format!("{:.5}", row.eps),
            format!("{:.5}", row.alpha),
            format!("{:.5}", row.beta),
        ]);
    }
    artifact.section(
        "summary",
        Json::obj()
            .set("max_eps_deviation", max_dev)
            .set("strassen_exponent", strassen.exponent)
            .set("lambda_strassen", lambda_field(OMEGA_STRASSEN)),
    );
    artifact.section(
        "percentiles",
        reservoir_section(&[("optimizer.schedule_nanos", &eval_ns)]),
    );
    artifact.section(
        "budget",
        budget_section(
            &[
                BudgetEntry::new(
                    "table4 field exponent",
                    "exponent",
                    "paper headline A = 1.832 (Lemma 4.13, fields)",
                    1.832,
                    s.exponent,
                ),
                BudgetEntry::new(
                    "table4 strassen variant",
                    "exponent",
                    "semiring headline 1.867 upper-bounds the ω = 2.807 engine",
                    1.867,
                    strassen.exponent,
                ),
            ],
            DEFAULT_TOLERANCE,
        ),
    );
    artifact.finish();
}
