//! Validate every machine-readable run artifact under the results
//! directory: each `results/*.json` must parse and carry the
//! `{"name": ..., "sections": {...}}` envelope written by
//! [`lowband_bench::report::JsonReport`].
//!
//! ```text
//! cargo run -p lowband-bench --bin validate_results
//! ```
//!
//! Exits non-zero if any artifact is malformed, or if the directory
//! contains no artifacts at all (so CI fails loudly when generation was
//! skipped). `LOWBAND_RESULTS_DIR` overrides the directory.
//!
//! Beyond the envelope, **every** artifact must carry the two
//! observability sections (DESIGN.md §13): `percentiles` (non-empty
//! histogram summaries) and `budget` (every predicted-vs-observed bound
//! holding), with no `null` (NaN/∞ poisoning) or negative number inside
//! either.

use lowband_bench::report::{
    results_dir, validate_artifact, validate_observability, validate_required_sections,
};

/// Required sections for artifacts with a known schema; files not listed
/// here only get the generic envelope + observability checks.
const KNOWN: &[(&str, &[&str])] = &[
    (
        "recovery",
        &["checkpoint_overhead", "recovery_cost", "fault_kinds"],
    ),
    (
        "batch",
        &["amortized", "cache", "parallel", "packed", "plan_store"],
    ),
    ("baseline", &["probes", "meta"]),
    (
        "chaos",
        &["survival", "rungs", "breaker", "deadline", "fault_kinds"],
    ),
    (
        "serving",
        &[
            "throughput",
            "latency",
            "hit_rate",
            "rungs",
            "rejections",
            "correctness",
        ],
    ),
];

/// Batch-specific deep check: the `cache` section must expose a
/// `hit_rate` in `[0, 1]` (satellite of the schedule-cache stats surface).
fn validate_batch_cache(doc: &lowband_bench::report::Json) -> Result<(), String> {
    let rate = doc
        .get("sections")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("hit_rate"))
        .and_then(|v| v.as_f64())
        .ok_or("cache: missing \"hit_rate\" number")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("cache: hit_rate {rate} outside [0, 1]"));
    }
    Ok(())
}

/// Batch-specific deep check for the plan-store triple (DESIGN.md §16):
/// the tiers must be ordered cold ≥ disk ≥ warm, and a disk load
/// (read + checksum + decode + admission lint) must cost at most 0.3× the
/// cold compile it replaces — otherwise the persistent tier is not
/// pulling its weight.
fn validate_batch_plan_store(doc: &lowband_bench::report::Json) -> Result<(), String> {
    let section = doc
        .get("sections")
        .and_then(|s| s.get("plan_store"))
        .ok_or("plan_store: missing section")?;
    let num = |field: &str| -> Result<f64, String> {
        section
            .get(field)
            .and_then(|v| v.as_f64())
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or(format!("plan_store: missing or invalid \"{field}\""))
    };
    let (cold, disk, warm) = (num("cold_ns")?, num("disk_ns")?, num("warm_ns")?);
    if !(cold >= disk && disk >= warm) {
        return Err(format!(
            "plan_store: tiers out of order — cold {cold:.0} / disk {disk:.0} / warm {warm:.0}"
        ));
    }
    let ratio = num("disk_over_cold")?;
    if ratio > 0.3 {
        return Err(format!(
            "plan_store: disk_over_cold {ratio:.3} above the 0.3 gate"
        ));
    }
    if num("file_bytes")? <= 0.0 {
        return Err("plan_store: file_bytes must be positive".to_string());
    }
    Ok(())
}

/// Serving-specific deep check (DESIGN.md §15): the daemon must never
/// have answered with a digest that failed client-side verification, and
/// the cache hit-rate must be a clean number in `[0, 1]`.
fn validate_serving(doc: &lowband_bench::report::Json) -> Result<(), String> {
    let sections = doc.get("sections").ok_or("serving: missing sections")?;
    let incorrect = sections
        .get("correctness")
        .and_then(|c| c.get("incorrect"))
        .and_then(|v| v.as_u64())
        .ok_or("serving: missing \"correctness.incorrect\" count")?;
    if incorrect > 0 {
        return Err(format!(
            "serving: {incorrect} response(s) failed digest verification"
        ));
    }
    let rate = sections
        .get("hit_rate")
        .and_then(|c| c.get("hit_rate"))
        .and_then(|v| v.as_f64())
        .ok_or("serving: missing \"hit_rate.hit_rate\" number")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("serving: hit_rate {rate} outside [0, 1]"));
    }
    Ok(())
}

/// Chaos-specific deep check (DESIGN.md §14): every request must have
/// ended in a typed outcome (survival rate exactly 1.0 — zero process
/// aborts) and the served rate must clear the soak gate.
fn validate_chaos(doc: &lowband_bench::report::Json) -> Result<(), String> {
    let survival = doc
        .get("sections")
        .and_then(|s| s.get("survival"))
        .ok_or("chaos: missing \"survival\" section")?;
    let survived = survival
        .get("survived_rate")
        .and_then(|v| v.as_f64())
        .ok_or("chaos: missing \"survived_rate\" number")?;
    if survived < 1.0 {
        return Err(format!(
            "chaos: survived_rate {survived} < 1.0 — a request ended without a typed outcome"
        ));
    }
    let served = survival
        .get("served_rate")
        .and_then(|v| v.as_f64())
        .ok_or("chaos: missing \"served_rate\" number")?;
    if served < 0.9 {
        return Err(format!("chaos: served_rate {served} below the 0.9 gate"));
    }
    Ok(())
}

fn main() {
    let dir = results_dir();
    let mut checked = 0usize;
    let mut failed = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("validate_results: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    for path in paths {
        checked += 1;
        let required = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|stem| KNOWN.iter().find(|(name, _)| *name == stem))
            .map_or(&[][..], |(_, sections)| sections);
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("")
            .to_string();
        match validate_artifact(&path).and_then(|n| {
            validate_required_sections(&path, required)?;
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read failed: {e}"))?;
            let doc = lowband_trace::json::parse(&text).map_err(|e| e.to_string())?;
            validate_observability(&doc)?;
            if stem == "batch" {
                validate_batch_cache(&doc)?;
                validate_batch_plan_store(&doc)?;
            }
            if stem == "chaos" {
                validate_chaos(&doc)?;
            }
            if stem == "serving" {
                validate_serving(&doc)?;
            }
            Ok(n)
        }) {
            Ok(sections) => println!("ok   {} ({sections} sections)", path.display()),
            Err(msg) => {
                failed += 1;
                eprintln!("FAIL {}: {msg}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!(
            "validate_results: no *.json artifacts in {} — run a table bin with --json first",
            dir.display()
        );
        std::process::exit(1);
    }
    println!("validated {checked} artifact(s), {failed} failure(s)");
    if failed > 0 {
        std::process::exit(1);
    }
}
