//! Validate every machine-readable run artifact under the results
//! directory: each `results/*.json` must parse and carry the
//! `{"name": ..., "sections": {...}}` envelope written by
//! [`lowband_bench::report::JsonReport`].
//!
//! ```text
//! cargo run -p lowband-bench --bin validate_results
//! ```
//!
//! Exits non-zero if any artifact is malformed, or if the directory
//! contains no artifacts at all (so CI fails loudly when generation was
//! skipped). `LOWBAND_RESULTS_DIR` overrides the directory.

use lowband_bench::report::{results_dir, validate_artifact, validate_required_sections};

/// Required sections for artifacts with a known schema; files not listed
/// here only get the generic envelope check.
const KNOWN: &[(&str, &[&str])] = &[
    ("recovery", &["checkpoint_overhead", "recovery_cost"]),
    ("batch", &["amortized", "cache", "parallel", "packed"]),
];

fn main() {
    let dir = results_dir();
    let mut checked = 0usize;
    let mut failed = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("validate_results: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    for path in paths {
        checked += 1;
        let required = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|stem| KNOWN.iter().find(|(name, _)| *name == stem))
            .map_or(&[][..], |(_, sections)| sections);
        match validate_artifact(&path).and_then(|n| {
            validate_required_sections(&path, required)?;
            Ok(n)
        }) {
            Ok(sections) => println!("ok   {} ({sections} sections)", path.display()),
            Err(msg) => {
                failed += 1;
                eprintln!("FAIL {}: {msg}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!(
            "validate_results: no *.json artifacts in {} — run a table bin with --json first",
            dir.display()
        );
        std::process::exit(1);
    }
    println!("validated {checked} artifact(s), {failed} failure(s)");
    if failed > 0 {
        std::process::exit(1);
    }
}
