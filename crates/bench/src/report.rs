//! Machine-readable run artifacts: the `--json` mode shared by every
//! table/figure binary and the bench harness.
//!
//! Passing `--json` to a binary keeps its human-readable stdout exactly as
//! before and *additionally* writes `results/<name>.json` — the same rows
//! as structured data (see [`Json`]), so plots and regression checks never
//! re-parse the text tables. The envelope is uniform across binaries:
//!
//! ```json
//! {"name": "table1", "sections": {"<section>": <rows-or-object>, ...}}
//! ```
//!
//! Counters and round totals are emitted as exact integers; derived floats
//! (fits, throughput) as JSON numbers, with `null` for not-measurable
//! (e.g. a run below clock resolution).

use std::path::{Path, PathBuf};

pub use lowband_trace::budget::{budget_section, BudgetEntry, DEFAULT_TOLERANCE};
pub use lowband_trace::percentile::{percentiles_section, reservoir_section, Reservoir};
pub use lowband_trace::Json;

/// True when `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Directory the JSON artifacts are written to (created on demand),
/// overridable with `LOWBAND_RESULTS_DIR` — the text artifacts live in
/// `results/` too, so that is the default.
pub fn results_dir() -> PathBuf {
    std::env::var_os("LOWBAND_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Accumulates one binary's sections and writes the artifact.
pub struct JsonReport {
    name: String,
    sections: Vec<(String, Json)>,
}

impl JsonReport {
    /// Start an artifact named `name` (becomes `results/<name>.json`).
    pub fn new(name: impl Into<String>) -> JsonReport {
        JsonReport {
            name: name.into(),
            sections: Vec::new(),
        }
    }

    /// Add (or extend) a named section. Re-adding a key appends rows when
    /// both values are arrays; otherwise the later value wins.
    pub fn section(&mut self, key: &str, value: Json) {
        if let Some((_, existing)) = self.sections.iter_mut().find(|(k, _)| k == key) {
            if let (Json::Arr(old), Json::Arr(new)) = (&mut *existing, value) {
                old.extend(new);
                return;
            } else {
                // Unreachable in practice; keep a deterministic rule.
                return;
            }
        }
        self.sections.push((key.to_string(), value));
    }

    /// The full `{"name", "sections"}` envelope.
    pub fn to_json(&self) -> Json {
        Json::obj().set("name", self.name.as_str()).set(
            "sections",
            Json::Obj(
                self.sections
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        )
    }

    /// Write `results/<name>.json` (pretty-printed); returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Write the artifact and print where it went; call unconditionally at
    /// the end of a binary — it is a no-op unless `--json` was passed.
    pub fn finish(&self) {
        if !json_mode() {
            return;
        }
        match self.write() {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}.json: {e}", self.name);
                std::process::exit(1);
            }
        }
    }
}

/// Validate one artifact file: well-formed JSON with the uniform envelope
/// (`name` string, `sections` object). Returns the section count.
pub fn validate_artifact(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = lowband_trace::json::parse(&text).map_err(|e| e.to_string())?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing \"name\" string")?;
    if name.is_empty() {
        return Err("empty \"name\"".into());
    }
    let sections = doc
        .get("sections")
        .and_then(|v| v.as_object())
        .ok_or("missing \"sections\" object")?;
    if sections.is_empty() {
        return Err("no sections".into());
    }
    Ok(sections.len())
}

/// Check that an artifact carries every section in `required`, on top of the
/// envelope checks of [`validate_artifact`]. Used by `validate_results` for
/// artifacts whose schema is known, so a bin that silently stops emitting a
/// section fails CI instead of shipping a hollow file.
pub fn validate_required_sections(path: &Path, required: &[&str]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = lowband_trace::json::parse(&text).map_err(|e| e.to_string())?;
    let sections = doc
        .get("sections")
        .and_then(|v| v.as_object())
        .ok_or("missing \"sections\" object")?;
    for key in required {
        if !sections.iter().any(|(k, _)| k == key) {
            return Err(format!("missing required section \"{key}\""));
        }
    }
    Ok(())
}

/// Reject `null`s (a NaN or ∞ serializes as `null` by design, so a `null`
/// inside a measurement section means a poisoned number) and negative
/// numbers anywhere under `value`. `at` names the JSON path for messages.
fn check_clean(value: &Json, at: &str) -> Result<(), String> {
    match value {
        Json::Null => Err(format!("{at}: null (NaN/∞ or missing measurement)")),
        Json::Float(f) if *f < 0.0 => Err(format!("{at}: negative value {f}")),
        Json::Int(i) if *i < 0 => Err(format!("{at}: negative value {i}")),
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .try_for_each(|(i, v)| check_clean(v, &format!("{at}[{i}]"))),
        Json::Obj(pairs) => pairs
            .iter()
            .try_for_each(|(k, v)| check_clean(v, &format!("{at}.{k}"))),
        _ => Ok(()),
    }
}

/// Deep checks on the two observability sections every artifact must carry
/// (DESIGN.md §13):
///
/// * `percentiles` — a `method` string plus a **non-empty** `histograms`
///   object (log₂-bucket or exact-reservoir summaries);
/// * `budget` — non-empty `entries`, each with `ok: true` (the
///   predicted/observed communication budget holds within tolerance);
/// * neither section contains a `null` (NaN poisoning) or a negative
///   number anywhere.
pub fn validate_observability(doc: &Json) -> Result<(), String> {
    let sections = doc
        .get("sections")
        .and_then(|v| v.as_object())
        .ok_or("missing \"sections\" object")?;
    let lookup = |key: &str| sections.iter().find(|(k, _)| k == key).map(|(_, v)| v);

    let pct = lookup("percentiles").ok_or("missing required section \"percentiles\"")?;
    pct.get("method")
        .and_then(|v| v.as_str())
        .ok_or("percentiles: missing \"method\" string")?;
    let hists = pct
        .get("histograms")
        .and_then(|v| v.as_object())
        .ok_or("percentiles: missing \"histograms\" object")?;
    if hists.is_empty() {
        return Err("percentiles: empty \"histograms\" (nothing was measured)".into());
    }
    check_clean(pct, "percentiles")?;

    let budget = lookup("budget").ok_or("missing required section \"budget\"")?;
    let entries = budget
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("budget: missing \"entries\" array")?;
    if entries.is_empty() {
        return Err("budget: empty \"entries\" (no bound was checked)".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let label = e.get("label").and_then(|v| v.as_str()).unwrap_or("?");
        match e.get("ok").and_then(|v| v.as_bool()) {
            Some(true) => {}
            Some(false) => {
                return Err(format!(
                    "budget entry {i} ({label}): bound violated (observed exceeds predicted)"
                ))
            }
            None => return Err(format!("budget entry {i} ({label}): missing \"ok\" bool")),
        }
    }
    check_clean(budget, "budget")
}

/// Format an optional throughput for the text tables: `"n/a"` when the
/// run was below clock resolution.
pub fn format_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r >= 1e6 => format!("{:.2} Mev/s", r / 1e6),
        Some(r) if r >= 1e3 => format!("{:.1} kev/s", r / 1e3),
        Some(r) => format!("{r:.0} ev/s"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape() {
        let mut r = JsonReport::new("t");
        r.section("rows", Json::Arr(vec![Json::UInt(1)]));
        r.section("rows", Json::Arr(vec![Json::UInt(2)]));
        r.section("meta", Json::obj().set("n", 4u64));
        let doc = r.to_json();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("t"));
        let sections = doc.get("sections").unwrap();
        assert_eq!(sections.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            sections.get("meta").unwrap().get("n").unwrap().as_u64(),
            Some(4)
        );
    }

    #[test]
    fn validation_round_trip() {
        let dir = std::env::temp_dir().join("lowband-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.json");
        let mut r = JsonReport::new("ok");
        r.section("rows", Json::Arr(vec![Json::UInt(3)]));
        std::fs::write(&path, r.to_json().to_pretty()).unwrap();
        assert_eq!(validate_artifact(&path), Ok(1));

        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"name\": \"x\"").unwrap();
        assert!(validate_artifact(&bad).is_err());
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "{\"name\": \"x\", \"sections\": {}}").unwrap();
        assert!(validate_artifact(&empty).is_err());
    }

    fn doc_with(budget_ok: bool, poisoned: bool) -> Json {
        let hist = Json::obj()
            .set("p50", 10u64)
            .set("p95", 20u64)
            .set("count", 5u64);
        let mut entry = Json::obj()
            .set("label", "e")
            .set("predicted", 10.0)
            .set("ok", budget_ok);
        if poisoned {
            entry = entry.set("observed", f64::NAN); // serializes as null
        } else {
            entry = entry.set("observed", 8.0);
        }
        Json::obj().set("name", "t").set(
            "sections",
            Json::obj()
                .set(
                    "percentiles",
                    Json::obj()
                        .set("method", "exact-reservoir")
                        .set("histograms", Json::obj().set("x", hist)),
                )
                .set("budget", Json::obj().set("entries", Json::Arr(vec![entry]))),
        )
    }

    #[test]
    fn observability_validation_accepts_good_rejects_bad() {
        assert_eq!(validate_observability(&doc_with(true, false)), Ok(()));
        // A violated bound names the entry.
        let err = validate_observability(&doc_with(false, false)).unwrap_err();
        assert!(err.contains("bound violated"), "{err}");
        // NaN poisoning (serialized as null) is caught by the deep scan.
        let reparsed = lowband_trace::json::parse(&doc_with(true, true).to_pretty()).unwrap();
        let err = validate_observability(&reparsed).unwrap_err();
        assert!(err.contains("null"), "{err}");
        // Missing sections entirely.
        let bare = Json::obj()
            .set("name", "t")
            .set("sections", Json::obj().set("rows", Json::Arr(vec![])));
        assert!(validate_observability(&bare)
            .unwrap_err()
            .contains("percentiles"));
        // Empty histograms: something claimed to measure but didn't.
        let mut empty = doc_with(true, false);
        if let Json::Obj(ref mut fields) = empty {
            if let Some((_, Json::Obj(sections))) = fields.iter_mut().find(|(k, _)| k == "sections")
            {
                if let Some((_, pct)) = sections.iter_mut().find(|(k, _)| k == "percentiles") {
                    *pct = Json::obj()
                        .set("method", "exact-reservoir")
                        .set("histograms", Json::obj());
                }
            }
        }
        assert!(validate_observability(&empty)
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(format_rate(None), "n/a");
        assert_eq!(format_rate(Some(2_500_000.0)), "2.50 Mev/s");
        assert_eq!(format_rate(Some(1_500.0)), "1.5 kev/s");
        assert_eq!(format_rate(Some(42.0)), "42 ev/s");
    }
}
