//! Algebraic structures carried by messages.
//!
//! The paper states its results for matrix multiplication over *semirings*
//! (addition + multiplication, no subtraction) and over *fields* (where fast
//! dense multiplication à la Strassen applies). The message payloads of the
//! simulator are elements of a [`Semiring`]; the richer [`Ring`] and
//! [`Field`] traits are used by the dense kernels in `lowband-matrix`.
//!
//! One semiring, [`Nat`] (`u64` with saturating `+`/`×`), lives here so that
//! the model crate is self-contained and testable; the full set of algebra
//! implementations (Boolean, tropical, `𝔽_p`, …) lives in `lowband-matrix`.

/// A commutative semiring `(S, +, ·, 0, 1)`.
///
/// Requirements (checked by property tests in `lowband-matrix`):
/// `+` is associative and commutative with identity `zero`; `·` is
/// associative with identity `one`; `·` distributes over `+`;
/// `zero · x = zero`.
pub trait Semiring: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, rhs: &Self) -> Self;

    /// `true` iff this element equals [`Semiring::zero`].
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// The additive inverse, when the structure has one.
    ///
    /// Semirings return `None` (the default); every [`Ring`] implementation
    /// overrides this to `Some(self.neg())`. The executor uses it for the
    /// subtraction op that Strassen-style field schedules need, failing
    /// loudly when such a schedule is run over a plain semiring.
    fn try_neg(&self) -> Option<Self> {
        None
    }

    /// A 64-bit digest of the element, folded into the executors' per-round
    /// rolling checksums for in-flight corruption detection.
    ///
    /// The default only distinguishes zero from nonzero — enough to catch
    /// message *drops* but coarse for corruption. Every concrete algebra in
    /// this workspace overrides it with its full representation; custom
    /// types should too, or in-flight corruption may go undetected.
    fn digest(&self) -> u64 {
        u64::from(!self.is_zero())
    }

    /// The perturbed value a fault-injected "corruption" delivers instead
    /// of `self`. The default adds one. For algebras where `x + 1 = x`
    /// (e.g. the Boolean semiring's `true`), injected corruption can be a
    /// no-op — which the checksum then rightly does not flag.
    fn corrupted(&self) -> Self {
        self.add(&Self::one())
    }
}

/// A commutative ring: a semiring with additive inverses.
///
/// Subtraction is what Strassen-style fast multiplication needs, so the
/// paper's "fields" results only require this much from the local kernels.
pub trait Ring: Semiring {
    /// Additive inverse.
    ///
    /// Implementations must also override [`Semiring::try_neg`] to
    /// `Some(self.neg())` so ring-only schedule ops work at run time.
    fn neg(&self) -> Self;

    /// `self - rhs`, default via [`Ring::neg`].
    fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }
}

/// A field: a ring where every nonzero element has a multiplicative inverse.
pub trait Field: Ring {
    /// Multiplicative inverse; `None` for zero.
    fn inv(&self) -> Option<Self>;
}

/// The semiring of natural numbers under saturating `u64` arithmetic.
///
/// Saturation keeps the structure a genuine (commutative, zero-annihilating)
/// semiring on the representable range while avoiding overflow panics in
/// debug builds; tests use values small enough that saturation never fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Nat(pub u64);

impl Semiring for Nat {
    fn zero() -> Self {
        Nat(0)
    }
    fn one() -> Self {
        Nat(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        Nat(self.0.saturating_add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Nat(self.0.saturating_mul(rhs.0))
    }
    fn digest(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_semiring_laws_smoke() {
        let (a, b, c) = (Nat(3), Nat(5), Nat(7));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.add(&Nat::zero()), a);
        assert_eq!(a.mul(&Nat::one()), a);
        assert_eq!(a.mul(&Nat::zero()), Nat::zero());
        assert!(Nat::zero().is_zero());
        assert!(!Nat::one().is_zero());
    }

    #[test]
    fn nat_saturates_instead_of_wrapping() {
        let big = Nat(u64::MAX);
        assert_eq!(big.add(&Nat(1)), big);
        assert_eq!(big.mul(&Nat(2)), big);
    }
}
