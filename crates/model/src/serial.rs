//! Schedule persistence: save and reload compiled programs.
//!
//! In the supported model a schedule is a function of the instance
//! *structure* only, so it is a natural cacheable artifact: compile once
//! (expensive on large instances — triangle enumeration, sorting, edge
//! coloring), persist, and reload for every run with fresh values.
//!
//! The format is a line-oriented text format, versioned and
//! self-describing:
//!
//! ```text
//! lowband-schedule v1
//! n <nodes> capacity <c>
//! round <count>
//! <src> <src_key:hex> <dst> <dst_key:hex> <o|a>
//! …
//! compute <count>
//! mul <node> <dst:hex> <lhs:hex> <rhs:hex>
//! …
//! end
//! ```

use std::io::{BufRead, Write};

use crate::schedule::{LocalOp, Merge, Round, Step};
use crate::{Key, NodeId, Schedule, ScheduleBuilder};

/// Errors raised while reading a persisted schedule.
#[derive(Debug)]
pub enum SerialError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number (0 when not line-specific).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The reconstructed schedule violated the model constraints.
    Model(crate::ModelError),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Io(e) => write!(f, "i/o error: {e}"),
            SerialError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SerialError::Model(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl std::error::Error for SerialError {}

impl From<std::io::Error> for SerialError {
    fn from(e: std::io::Error) -> SerialError {
        SerialError::Io(e)
    }
}

impl From<crate::ModelError> for SerialError {
    fn from(e: crate::ModelError) -> SerialError {
        SerialError::Model(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> SerialError {
    SerialError::Parse {
        line,
        message: message.into(),
    }
}

/// Write a schedule in the v1 text format.
pub fn write_schedule<W: Write>(schedule: &Schedule, mut w: W) -> Result<(), SerialError> {
    writeln!(w, "lowband-schedule v1")?;
    writeln!(w, "n {} capacity {}", schedule.n(), schedule.capacity())?;
    for step in schedule.steps() {
        match step {
            Step::Comm(Round { transfers }) => {
                writeln!(w, "round {}", transfers.len())?;
                for t in transfers {
                    writeln!(
                        w,
                        "{} {:x} {} {:x} {}",
                        t.src.0,
                        t.src_key.to_raw(),
                        t.dst.0,
                        t.dst_key.to_raw(),
                        match t.merge {
                            Merge::Overwrite => "o",
                            Merge::Add => "a",
                        }
                    )?;
                }
            }
            Step::Compute(ops) => {
                writeln!(w, "compute {}", ops.len())?;
                for op in ops {
                    match *op {
                        LocalOp::Mul {
                            node,
                            dst,
                            lhs,
                            rhs,
                        } => writeln!(
                            w,
                            "mul {} {:x} {:x} {:x}",
                            node.0,
                            dst.to_raw(),
                            lhs.to_raw(),
                            rhs.to_raw()
                        )?,
                        LocalOp::MulAdd {
                            node,
                            dst,
                            lhs,
                            rhs,
                        } => writeln!(
                            w,
                            "muladd {} {:x} {:x} {:x}",
                            node.0,
                            dst.to_raw(),
                            lhs.to_raw(),
                            rhs.to_raw()
                        )?,
                        LocalOp::SubAssign { node, dst, src } => {
                            writeln!(w, "sub {} {:x} {:x}", node.0, dst.to_raw(), src.to_raw())?
                        }
                        LocalOp::BlockMulAdd {
                            node,
                            dim,
                            a_ns,
                            b_ns,
                            c_ns,
                        } => writeln!(
                            w,
                            "blockmuladd {} {} {} {} {}",
                            node.0, dim, a_ns, b_ns, c_ns
                        )?,
                        LocalOp::AddAssign { node, dst, src } => {
                            writeln!(w, "add {} {:x} {:x}", node.0, dst.to_raw(), src.to_raw())?
                        }
                        LocalOp::Copy { node, dst, src } => {
                            writeln!(w, "copy {} {:x} {:x}", node.0, dst.to_raw(), src.to_raw())?
                        }
                        LocalOp::Zero { node, dst } => {
                            writeln!(w, "zero {} {:x}", node.0, dst.to_raw())?
                        }
                        LocalOp::Free { node, key } => {
                            writeln!(w, "free {} {:x}", node.0, key.to_raw())?
                        }
                    }
                }
            }
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Read a schedule from the v1 text format, re-validating the bandwidth
/// constraint on every round.
pub fn read_schedule<R: BufRead>(r: R) -> Result<Schedule, SerialError> {
    let mut lines = r.lines().enumerate().map(|(i, l)| (i + 1, l));
    let mut next = move || -> Result<Option<(usize, String)>, SerialError> {
        match lines.next() {
            Some((i, l)) => Ok(Some((i, l?))),
            None => Ok(None),
        }
    };

    let (hl, header) = next()?.ok_or_else(|| err(0, "empty input"))?;
    if header.trim() != "lowband-schedule v1" {
        return Err(err(hl, "expected `lowband-schedule v1` header"));
    }
    let (sl, size) = next()?.ok_or_else(|| err(0, "missing size line"))?;
    let toks: Vec<&str> = size.split_whitespace().collect();
    if toks.len() != 4 || toks[0] != "n" || toks[2] != "capacity" {
        return Err(err(sl, "expected `n <nodes> capacity <c>`"));
    }
    let n: usize = toks[1]
        .parse()
        .map_err(|e| err(sl, format!("bad n: {e}")))?;
    let cap: usize = toks[3]
        .parse()
        .map_err(|e| err(sl, format!("bad capacity: {e}")))?;

    let parse_node = |line: usize, tok: &str| -> Result<NodeId, SerialError> {
        Ok(NodeId(
            tok.parse()
                .map_err(|e| err(line, format!("bad node: {e}")))?,
        ))
    };
    let parse_key = |line: usize, tok: &str| -> Result<Key, SerialError> {
        Ok(Key::from_raw(
            u128::from_str_radix(tok, 16).map_err(|e| err(line, format!("bad key: {e}")))?,
        ))
    };

    let mut b = ScheduleBuilder::with_capacity(n, cap);
    let mut seen_end = false;
    while let Some((l, line)) = next()? {
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        match toks[0].as_str() {
            "end" => {
                seen_end = true;
                // Drain the rest of the input: a well-formed file ends
                // here, so any further non-blank line means the file was
                // concatenated, tampered with, or mis-assembled — reject
                // it rather than silently ignoring content.
                while let Some((gl, garbage)) = next()? {
                    if !garbage.trim().is_empty() {
                        return Err(err(gl, "content after `end` marker"));
                    }
                }
                break;
            }
            "lowband-schedule" => {
                return Err(err(l, "duplicate `lowband-schedule` header"));
            }
            "round" => {
                let count: usize = toks
                    .get(1)
                    .ok_or_else(|| err(l, "round needs a count"))?
                    .parse()
                    .map_err(|e| err(l, format!("bad count: {e}")))?;
                let mut transfers = Vec::with_capacity(count);
                for _ in 0..count {
                    let (tl, tline) = next()?.ok_or_else(|| err(l, "truncated round"))?;
                    let t: Vec<&str> = tline.split_whitespace().collect();
                    if t.len() != 5 {
                        return Err(err(tl, "transfer needs 5 fields"));
                    }
                    transfers.push(crate::Transfer {
                        src: parse_node(tl, t[0])?,
                        src_key: parse_key(tl, t[1])?,
                        dst: parse_node(tl, t[2])?,
                        dst_key: parse_key(tl, t[3])?,
                        merge: match t[4] {
                            "o" => Merge::Overwrite,
                            "a" => Merge::Add,
                            other => return Err(err(tl, format!("bad merge `{other}`"))),
                        },
                    });
                }
                b.round(transfers)?;
            }
            "compute" => {
                let count: usize = toks
                    .get(1)
                    .ok_or_else(|| err(l, "compute needs a count"))?
                    .parse()
                    .map_err(|e| err(l, format!("bad count: {e}")))?;
                if count == 0 {
                    // The builder drops empty compute blocks, so a
                    // `compute 0` section would vanish on reload — a file
                    // containing one can never round-trip and is rejected.
                    return Err(err(l, "empty `compute 0` section"));
                }
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    let (ol, oline) = next()?.ok_or_else(|| err(l, "truncated compute"))?;
                    let t: Vec<&str> = oline.split_whitespace().collect();
                    let op = match (t.first().map(|s| &**s), t.len()) {
                        (Some("mul"), 5) => LocalOp::Mul {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                            lhs: parse_key(ol, t[3])?,
                            rhs: parse_key(ol, t[4])?,
                        },
                        (Some("muladd"), 5) => LocalOp::MulAdd {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                            lhs: parse_key(ol, t[3])?,
                            rhs: parse_key(ol, t[4])?,
                        },
                        (Some("sub"), 4) => LocalOp::SubAssign {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                            src: parse_key(ol, t[3])?,
                        },
                        (Some("blockmuladd"), 6) => LocalOp::BlockMulAdd {
                            node: parse_node(ol, t[1])?,
                            dim: t[2].parse().map_err(|e| err(ol, format!("bad dim: {e}")))?,
                            a_ns: t[3].parse().map_err(|e| err(ol, format!("bad ns: {e}")))?,
                            b_ns: t[4].parse().map_err(|e| err(ol, format!("bad ns: {e}")))?,
                            c_ns: t[5].parse().map_err(|e| err(ol, format!("bad ns: {e}")))?,
                        },
                        (Some("add"), 4) => LocalOp::AddAssign {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                            src: parse_key(ol, t[3])?,
                        },
                        (Some("copy"), 4) => LocalOp::Copy {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                            src: parse_key(ol, t[3])?,
                        },
                        (Some("zero"), 3) => LocalOp::Zero {
                            node: parse_node(ol, t[1])?,
                            dst: parse_key(ol, t[2])?,
                        },
                        (Some("free"), 3) => LocalOp::Free {
                            node: parse_node(ol, t[1])?,
                            key: parse_key(ol, t[2])?,
                        },
                        _ => return Err(err(ol, format!("bad op `{oline}`"))),
                    };
                    ops.push(op);
                }
                b.compute(ops)?;
            }
            other => return Err(err(l, format!("unknown directive `{other}`"))),
        }
    }
    if !seen_end {
        return Err(err(0, "missing `end` marker (truncated file?)"));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::{Machine, Transfer};

    fn sample_schedule() -> Schedule {
        let mut b = ScheduleBuilder::new(4);
        b.compute(vec![LocalOp::Zero {
            node: NodeId(0),
            dst: Key::x(0, 0),
        }])
        .unwrap();
        b.round(vec![
            Transfer {
                src: NodeId(1),
                src_key: Key::a(1, 2),
                dst: NodeId(0),
                dst_key: Key::x(0, 0),
                merge: Merge::Add,
            },
            Transfer {
                src: NodeId(2),
                src_key: Key::b(2, 3),
                dst: NodeId(3),
                dst_key: Key::tmp(7, 8),
                merge: Merge::Overwrite,
            },
        ])
        .unwrap();
        b.compute(vec![LocalOp::MulAdd {
            node: NodeId(3),
            dst: Key::x(3, 3),
            lhs: Key::tmp(7, 8),
            rhs: Key::tmp(7, 8),
        }])
        .unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_preserves_schedule() {
        let s = sample_schedule();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let back = read_schedule(buf.as_slice()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn reloaded_schedule_executes_identically() {
        let s = sample_schedule();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let back = read_schedule(buf.as_slice()).unwrap();

        let run = |sched: &Schedule| {
            let mut m: Machine<Nat> = Machine::new(4);
            m.load(NodeId(1), Key::a(1, 2), Nat(5));
            m.load(NodeId(2), Key::b(2, 3), Nat(6));
            m.run(sched).unwrap();
            (
                m.get_or_zero(NodeId(0), Key::x(0, 0)),
                m.get_or_zero(NodeId(3), Key::x(3, 3)),
            )
        };
        assert_eq!(run(&s), run(&back));
    }

    #[test]
    fn reloaded_schedule_links_and_runs_identically() {
        // The full persistence pipeline: build → write → read → link → run
        // on the slot store, compared bit-for-bit against running the
        // original schedule on the hash-map machine. Exercises Merge::Add
        // transfers and compute blocks through both the text format and the
        // linker.
        let s = sample_schedule();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let back = read_schedule(buf.as_slice()).unwrap();
        let linked = crate::link(&back).expect("reloaded schedule links");
        assert_eq!(linked.rounds(), s.rounds());
        assert_eq!(linked.messages(), s.messages());

        let mut reference: Machine<Nat> = Machine::new(4);
        let mut slot: crate::LinkedMachine<Nat> = crate::LinkedMachine::new(&linked);
        for (node, key, v) in [
            (NodeId(1), Key::a(1, 2), Nat(5)),
            (NodeId(2), Key::b(2, 3), Nat(6)),
        ] {
            reference.load(node, key, v);
            slot.load(node, key, v);
        }
        let s1 = reference.run(&s).unwrap();
        let s2 = slot.run().unwrap();
        assert_eq!(s1, s2, "stats agree across format + linker");
        for node in 0..4 {
            assert_eq!(
                reference.snapshot(NodeId(node)),
                slot.snapshot(NodeId(node)),
                "node {node} stores diverge after write/read/link"
            );
        }
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_schedule("nonsense\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn rejects_truncation() {
        let s = sample_schedule();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated = &text[..text.len() - 20];
        assert!(read_schedule(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_constraint_violations_on_load() {
        // A hand-written file with two sends from node 0 in one round must
        // be rejected by the builder during parsing.
        let text = "lowband-schedule v1\nn 3 capacity 1\nround 2\n0 1 1 2 o\n0 1 2 2 o\nend\n";
        let e = read_schedule(text.as_bytes()).unwrap_err();
        assert!(matches!(e, SerialError::Model(_)), "{e}");
    }

    #[test]
    fn rejects_trailing_garbage_after_end() {
        let s = sample_schedule();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("round 0\n");
        let e = read_schedule(text.as_bytes()).unwrap_err();
        assert!(matches!(e, SerialError::Parse { .. }), "{e}");
        assert!(e.to_string().contains("after `end`"), "{e}");
        // Trailing blank lines stay fine — only content is rejected.
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        assert_eq!(read_schedule(text.as_bytes()).unwrap(), s);
    }

    #[test]
    fn rejects_duplicate_header() {
        let text = "lowband-schedule v1\nn 2 capacity 1\nlowband-schedule v1\nend\n";
        let e = read_schedule(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn rejects_empty_compute_section() {
        // `compute 0` would be dropped by the builder and vanish on the
        // next save — a silent round-trip asymmetry, now a typed error.
        let text = "lowband-schedule v1\nn 2 capacity 1\ncompute 0\nend\n";
        let e = read_schedule(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("compute 0"), "{e}");
    }

    #[test]
    fn capacity_is_persisted() {
        let mut b = ScheduleBuilder::with_capacity(4, 3);
        b.round(vec![
            Transfer {
                src: NodeId(0),
                src_key: Key::a(0, 0),
                dst: NodeId(1),
                dst_key: Key::a(0, 0),
                merge: Merge::Overwrite,
            },
            Transfer {
                src: NodeId(0),
                src_key: Key::a(0, 0),
                dst: NodeId(2),
                dst_key: Key::a(0, 0),
                merge: Merge::Overwrite,
            },
        ])
        .unwrap();
        let s = b.build();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let back = read_schedule(buf.as_slice()).unwrap();
        assert_eq!(back.capacity(), 3);
        assert_eq!(back, s);
    }
}
