//! Errors raised while building or executing schedules.

use crate::{Key, NodeId};

/// Everything that can go wrong in the model layer.
///
/// Schedule construction errors ([`ModelError::SendConflict`],
/// [`ModelError::ReceiveConflict`], [`ModelError::NodeOutOfRange`]) are the
/// model's bandwidth constraint doing its job: a round in which some
/// computer would send or receive two messages is not a low-bandwidth round
/// and is rejected eagerly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A node appears as the source of two transfers in one round.
    SendConflict { round: usize, node: NodeId },
    /// A node appears as the destination of two transfers in one round.
    ReceiveConflict { round: usize, node: NodeId },
    /// A transfer or local op references a node `>= n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// At execution time, a referenced source key held no value.
    MissingValue { node: NodeId, key: Key, step: usize },
    /// A schedule built for `expected` nodes was run on a machine with
    /// `actual` nodes.
    SizeMismatch { expected: usize, actual: usize },
    /// An op required algebraic structure the value type lacks (e.g.
    /// subtraction over a plain semiring).
    UnsupportedOp {
        /// Node executing the op.
        node: NodeId,
        /// Step index.
        step: usize,
        /// What was required.
        what: &'static str,
    },
    /// The per-round rolling checksum of delivered payloads disagreed with
    /// the sender-side checksum: at least one message of `round` was lost
    /// or corrupted in flight. Raised only by fault-guarded runs.
    Corruption {
        /// Global round index (resumes included) of the failed round.
        round: usize,
    },
    /// `node` crashed (lost its entire store) at the boundary of `round`.
    /// Raised only by fault-guarded runs; recovery restores from the last
    /// checkpoint.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Global round index at which the crash occurred.
        round: usize,
    },
    /// A worker thread of a parallel executor panicked while applying
    /// `step` (e.g. a value type whose arithmetic panics). Machine state is
    /// indeterminate for that step; like [`ModelError::NodeCrashed`] this
    /// is retryable — `run_resilient` restores the last checkpoint and
    /// replays.
    WorkerPanicked {
        /// Step index whose sharded application lost a worker.
        step: usize,
    },
    /// A packed (lane-plane) batch was requested with a lane count the
    /// value type has no `PackedSemiring` monomorphization for — e.g. the
    /// bit-sliced Boolean planes exist only at 64 lanes per word.
    PackedLanesUnsupported {
        /// The rejected lane count.
        lanes: usize,
    },
    /// A parallel batch was requested with an explicit worker count of
    /// zero. Zero workers can shard no work — `items / 0` has no quotient
    /// — so the request is rejected eagerly instead of silently
    /// substituting a machine-dependent thread count.
    ZeroWorkers,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::SendConflict { round, node } => {
                write!(f, "round {round}: node {node} would send two messages")
            }
            ModelError::ReceiveConflict { round, node } => {
                write!(f, "round {round}: node {node} would receive two messages")
            }
            ModelError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for network of size {n}")
            }
            ModelError::MissingValue { node, key, step } => {
                write!(f, "step {step}: node {node} holds no value for key {key:?}")
            }
            ModelError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "schedule compiled for {expected} nodes run on machine with {actual} nodes"
                )
            }
            ModelError::UnsupportedOp { node, step, what } => {
                write!(
                    f,
                    "step {step}: node {node} needs {what} which the value type lacks"
                )
            }
            ModelError::Corruption { round } => {
                write!(
                    f,
                    "round {round}: delivered payloads fail the round checksum (message lost or corrupted)"
                )
            }
            ModelError::NodeCrashed { node, round } => {
                write!(f, "round {round}: node {node} crashed and lost its store")
            }
            ModelError::WorkerPanicked { step } => {
                write!(f, "step {step}: a parallel worker thread panicked")
            }
            ModelError::PackedLanesUnsupported { lanes } => {
                write!(
                    f,
                    "no packed {lanes}-lane execution is compiled in for this value type"
                )
            }
            ModelError::ZeroWorkers => {
                write!(f, "a parallel batch needs at least one worker thread")
            }
        }
    }
}

impl std::error::Error for ModelError {}
