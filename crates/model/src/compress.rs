//! Dataflow round compression: semantics-preserving schedule pipelining.
//!
//! Algorithms in `lowband-core` compile as sequences of *phases* (route,
//! kick, broadcast, deliver, …), each scheduled tightly on its own but
//! strictly after the previous one. Messages of a later phase that do not
//! depend on the earlier phase's values could travel earlier — phases can
//! *overlap*. [`compress`] performs that pipelining: it list-schedules every
//! event at the earliest round consistent with
//!
//! * **flow dependencies** — a value must be fully written strictly before
//!   a round that sends it (and no later than the compute slot that reads
//!   it);
//! * **anti dependencies** — a write may not overtake a read of the old
//!   value (a read and a write in the *same* round are fine: the machine
//!   reads all payloads before delivering any);
//! * **output dependencies** — writes to the same key keep their order;
//! * the **bandwidth constraint** — per round, each node sends ≤ `capacity`
//!   and receives ≤ `capacity` messages.
//!
//! Timing model: communication round `r ≥ 1` acts at time `2r`; the free
//! compute slot after round `s` acts at time `2s + 1` (slot 0 precedes the
//! first round). Reads act at the start of their time point, writes at the
//! end, which encodes the read-before-write round semantics exactly.
//!
//! Correctness relies only on the machine semantics (it is checked by
//! property tests that compressed and original schedules produce identical
//! stores); it does *not* assume the semiring is commutative beyond what
//! [`Merge::Add`] already requires.

use std::collections::HashMap;

use crate::schedule::{LocalOp, Merge, Round, Step};
use crate::{Key, NodeId, Schedule, ScheduleBuilder};

/// Per-(node, key) dependency clock.
#[derive(Clone, Copy, Default)]
struct KeyClock {
    /// Time of the last scheduled write (0 = initial load / never).
    write: u64,
    /// Time of the last scheduled read.
    read: u64,
}

/// Earliest communication round `r ≥ 1` whose action time `2r` is
/// **strictly after** clock time `t`.
///
/// This is the strict rounding used by flow dependencies (a payload ships
/// only after its producing write completed) and output dependencies
/// (writes to the same key keep their order). `t / 2 + 1 ≥ 1` for every
/// `t`, so no extra clamp is needed.
fn round_strictly_after(t: u64) -> usize {
    (t / 2 + 1) as usize
}

/// Earliest communication round `r ≥ 1` whose action time `2r` is **at or
/// after** clock time `t`.
///
/// This is the non-strict rounding used by anti dependencies: a write may
/// land in the *same* round as the last read of the old value, because
/// within a round the machine reads all payloads before delivering any.
/// The two roundings differ exactly at even `t = 2s`: a *read* at round
/// `s` admits a write in round `s` (this function), while a *write* at
/// round `s` pushes dependents to round `s + 1`
/// ([`round_strictly_after`]).
fn round_at_or_after(t: u64) -> usize {
    t.div_ceil(2).max(1) as usize
}

/// Earliest compute slot `s ≥ 0` whose action time `2s + 1` is at or after
/// clock time `t` (slot 0 precedes the first round; slot times are odd, so
/// "at or after" and "strictly after an even write time" coincide).
fn slot_at_or_after(t: u64) -> usize {
    t.saturating_sub(1).div_ceil(2) as usize
}

struct Compressor {
    n: usize,
    capacity: u32,
    /// Per-node key interner: `(node, key)` → dense clock slot. This is the
    /// same interning the schedule linker performs — hashing happens once
    /// per key reference here, and every subsequent clock access is a plain
    /// index into the flat `clocks` vector.
    slot_ids: Vec<HashMap<Key, u32>>,
    /// Flat clock storage, indexed by the interned slot id.
    clocks: Vec<KeyClock>,
    /// Per-round send/receive counts, flat-indexed by node (index round − 1).
    send_used: Vec<Vec<u32>>,
    recv_used: Vec<Vec<u32>>,
    /// The new rounds and compute slots being assembled.
    rounds: Vec<Vec<crate::Transfer>>,
    slots: Vec<Vec<LocalOp>>, // slot s runs after round s (slot 0 first)
}

impl Compressor {
    fn new(n: usize, capacity: u32) -> Compressor {
        Compressor {
            n,
            capacity,
            slot_ids: vec![HashMap::new(); n],
            clocks: Vec::new(),
            send_used: Vec::new(),
            recv_used: Vec::new(),
            rounds: Vec::new(),
            slots: vec![Vec::new()],
        }
    }

    /// Intern `(node, key)` into its dense clock slot (allocating a fresh
    /// zeroed clock on first sight). The single hash lookup per event lives
    /// here.
    fn slot(&mut self, node: NodeId, key: Key) -> usize {
        let clocks = &mut self.clocks;
        *self.slot_ids[node.index()].entry(key).or_insert_with(|| {
            let id = clocks.len() as u32;
            clocks.push(KeyClock::default());
            id
        }) as usize
    }

    fn ensure_round(&mut self, r: usize) {
        while self.rounds.len() < r {
            self.rounds.push(Vec::new());
            self.send_used.push(vec![0; self.n]);
            self.recv_used.push(vec![0; self.n]);
        }
        while self.slots.len() <= self.rounds.len() {
            self.slots.push(Vec::new());
        }
    }

    fn round_has_slot(&self, r: usize, src: NodeId, dst: NodeId) -> bool {
        if r > self.rounds.len() {
            return true; // fresh round
        }
        self.send_used[r - 1][src.index()] < self.capacity
            && self.recv_used[r - 1][dst.index()] < self.capacity
    }

    fn place_transfer(&mut self, t: crate::Transfer) {
        let src_id = self.slot(t.src, t.src_key);
        let dst_id = self.slot(t.dst, t.dst_key);
        // Flow: source value fully written strictly before the round fires.
        let src_written = self.clocks[src_id].write;
        let mut r = round_strictly_after(src_written);
        // Anti dependency: a write may not overtake a read of the old value
        // (ties are fine — within a round all reads precede all writes).
        let dst_clock = self.clocks[dst_id];
        r = r.max(round_at_or_after(dst_clock.read));
        // Output dependency: strictly after any earlier write to the same
        // key (two same-round writes have no defined order once capacity
        // exceeds 1).
        r = r.max(round_strictly_after(dst_clock.write));
        while !self.round_has_slot(r, t.src, t.dst) {
            r += 1;
        }
        self.ensure_round(r);
        self.send_used[r - 1][t.src.index()] += 1;
        self.recv_used[r - 1][t.dst.index()] += 1;
        self.rounds[r - 1].push(t);
        let time = 2 * r as u64;
        let sc = &mut self.clocks[src_id];
        sc.read = sc.read.max(time);
        let dc = &mut self.clocks[dst_id];
        dc.write = dc.write.max(time);
        if t.merge == Merge::Add {
            // An Add also "reads" the accumulator.
            dc.read = dc.read.max(time);
        }
    }

    /// Place one original communication round.
    ///
    /// Within a round the machine reads **all** payloads before delivering
    /// any, so a transfer may read a key that another transfer of the same
    /// round overwrites — it sees the *old* value regardless of list order.
    /// Per-transfer list scheduling would serialize such a pair and flip the
    /// read to the new value. When a round contains such a hazard (some
    /// `(node, key)` is both a source and a destination within the round) we
    /// therefore place the whole round atomically in one new round, which
    /// reproduces the read-barrier semantics exactly. Hazard-free rounds
    /// (the overwhelmingly common case for compiled phases) still pipeline
    /// transfer by transfer.
    fn place_round(&mut self, transfers: &[crate::Transfer]) {
        let written: std::collections::HashSet<(u32, Key)> =
            transfers.iter().map(|t| (t.dst.0, t.dst_key)).collect();
        let hazard = transfers
            .iter()
            .any(|t| written.contains(&(t.src.0, t.src_key)));
        if !hazard {
            for t in transfers {
                self.place_transfer(*t);
            }
            return;
        }

        // Atomic placement: earliest round satisfying every transfer's flow,
        // anti and output dependencies...
        let mut r = 1usize;
        for t in transfers {
            let src_id = self.slot(t.src, t.src_key);
            let dst_id = self.slot(t.dst, t.dst_key);
            let src_written = self.clocks[src_id].write;
            r = r.max(round_strictly_after(src_written));
            let dst_clock = self.clocks[dst_id];
            r = r.max(round_at_or_after(dst_clock.read));
            r = r.max(round_strictly_after(dst_clock.write));
        }
        // ...and with simultaneous send/receive capacity for all of them.
        // A fresh round always fits (the original round was valid), so this
        // terminates.
        'search: loop {
            if r <= self.rounds.len() {
                let mut send = vec![0u32; self.n];
                let mut recv = vec![0u32; self.n];
                for t in transfers {
                    send[t.src.index()] += 1;
                    recv[t.dst.index()] += 1;
                }
                for v in 0..self.n {
                    if self.send_used[r - 1][v] + send[v] > self.capacity
                        || self.recv_used[r - 1][v] + recv[v] > self.capacity
                    {
                        r += 1;
                        continue 'search;
                    }
                }
            }
            break;
        }
        self.ensure_round(r);
        let time = 2 * r as u64;
        for t in transfers {
            self.send_used[r - 1][t.src.index()] += 1;
            self.recv_used[r - 1][t.dst.index()] += 1;
            self.rounds[r - 1].push(*t);
        }
        // Clock updates after all placements: reads and writes of the round
        // share the same time point, exactly like the machine's semantics.
        for t in transfers {
            let src_id = self.slot(t.src, t.src_key);
            let sc = &mut self.clocks[src_id];
            sc.read = sc.read.max(time);
            let dst_id = self.slot(t.dst, t.dst_key);
            let dc = &mut self.clocks[dst_id];
            dc.write = dc.write.max(time);
            if t.merge == Merge::Add {
                dc.read = dc.read.max(time);
            }
        }
    }

    fn place_compute(&mut self, op: LocalOp) {
        let node = op.node();
        let (reads, writes): (Vec<Key>, Vec<Key>) = match op {
            LocalOp::Mul { dst, lhs, rhs, .. } => (vec![lhs, rhs], vec![dst]),
            LocalOp::MulAdd { dst, lhs, rhs, .. } => (vec![lhs, rhs, dst], vec![dst]),
            LocalOp::AddAssign { dst, src, .. } => (vec![src, dst], vec![dst]),
            LocalOp::SubAssign { dst, src, .. } => (vec![src, dst], vec![dst]),
            LocalOp::BlockMulAdd {
                dim,
                a_ns,
                b_ns,
                c_ns,
                ..
            } => {
                let dim = dim as u64;
                let mut reads = Vec::with_capacity(3 * (dim * dim) as usize);
                let mut writes = Vec::with_capacity((dim * dim) as usize);
                for idx in 0..dim * dim {
                    reads.push(Key::tmp(a_ns, idx));
                    reads.push(Key::tmp(b_ns, idx));
                    reads.push(Key::tmp(c_ns, idx));
                    writes.push(Key::tmp(c_ns, idx));
                }
                (reads, writes)
            }
            LocalOp::Copy { dst, src, .. } => (vec![src], vec![dst]),
            LocalOp::Zero { dst, .. } => (vec![], vec![dst]),
            LocalOp::Free { key, .. } => (vec![], vec![key]),
        };
        // Intern each referenced key once; the clock passes below are plain
        // indexed loads/stores on the flat clock vector.
        let read_ids: Vec<usize> = reads.iter().map(|&k| self.slot(node, k)).collect();
        let write_ids: Vec<usize> = writes.iter().map(|&k| self.slot(node, k)).collect();
        // Slot s acts at time 2s + 1; needs inputs written at ≤ 2s + 1 and
        // write deps ≤ 2s + 1.
        let mut need: u64 = 0;
        for &id in &read_ids {
            need = need.max(self.clocks[id].write);
        }
        for &id in &write_ids {
            let c = self.clocks[id];
            need = need.max(c.read).max(c.write);
        }
        let s = slot_at_or_after(need);
        while self.slots.len() <= s {
            self.slots.push(Vec::new());
        }
        self.slots[s].push(op);
        let time = 2 * s as u64 + 1;
        for &id in &read_ids {
            let c = &mut self.clocks[id];
            c.read = c.read.max(time);
        }
        for &id in &write_ids {
            let c = &mut self.clocks[id];
            c.write = c.write.max(time);
        }
    }

    fn finish(mut self) -> Schedule {
        self.ensure_round(self.rounds.len());
        let mut b = ScheduleBuilder::with_capacity(self.n, self.capacity as usize);
        let num_rounds = self.rounds.len();
        for r in 0..=num_rounds {
            if r < self.slots.len() {
                b.compute(std::mem::take(&mut self.slots[r]))
                    .expect("ops were valid in the source schedule");
            }
            if r < num_rounds {
                b.round(std::mem::take(&mut self.rounds[r]))
                    .expect("capacity was respected during placement");
            }
        }
        // Any trailing compute slots beyond the last round.
        for s in (num_rounds + 1)..self.slots.len() {
            let ops = std::mem::take(&mut self.slots[s]);
            b.compute(ops)
                .expect("ops were valid in the source schedule");
        }
        b.build()
    }
}

/// Pipeline a schedule: produce an equivalent schedule (identical final
/// machine state for every input) with at most — and usually far fewer
/// than — the original number of rounds.
pub fn compress(schedule: &Schedule) -> Schedule {
    let mut c = Compressor::new(schedule.n(), schedule.capacity() as u32);
    for step in schedule.steps() {
        match step {
            Step::Comm(Round { transfers }) => {
                c.place_round(transfers);
            }
            Step::Compute(ops) => {
                for op in ops {
                    c.place_compute(*op);
                }
            }
        }
    }
    c.finish()
}

/// [`compress`] with an instrumentation sink: wraps the pass in a
/// `"compress"` span and records the input and output round counts (the
/// pass's whole purpose is the `rounds_in → rounds_out` drop) plus the
/// message total, which compression must preserve.
pub fn compress_traced<T: lowband_trace::Tracer>(schedule: &Schedule, tracer: &mut T) -> Schedule {
    tracer.span_enter("compress");
    let out = compress(schedule);
    tracer.counter("compress.rounds_in", schedule.rounds() as u64);
    tracer.counter("compress.rounds_out", out.rounds() as u64);
    tracer.counter("compress.messages", out.messages() as u64);
    tracer.span_exit("compress");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::{Machine, Transfer};

    fn t(src: u32, sk: Key, dst: u32, dk: Key, merge: Merge) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: sk,
            dst: NodeId(dst),
            dst_key: dk,
            merge,
        }
    }

    /// Run both schedules from the same initial loads and compare final
    /// stores on the given keys.
    fn equivalent(
        n: usize,
        loads: &[(u32, Key, u64)],
        original: &Schedule,
        observe: &[(u32, Key)],
    ) {
        let compressed = compress(original);
        assert!(compressed.rounds() <= original.rounds());
        assert_eq!(compressed.messages(), original.messages());
        let mut m1: Machine<Nat> = Machine::new(n);
        let mut m2: Machine<Nat> = Machine::new(n);
        for &(node, key, v) in loads {
            m1.load(NodeId(node), key, Nat(v));
            m2.load(NodeId(node), key, Nat(v));
        }
        m1.run(original).unwrap();
        m2.run(&compressed).unwrap();
        for &(node, key) in observe {
            assert_eq!(
                m1.get(NodeId(node), key),
                m2.get(NodeId(node), key),
                "divergence at node {node} key {key:?}"
            );
        }
    }

    #[test]
    fn independent_rounds_merge_into_one() {
        // Two sequential rounds with disjoint nodes compress to one round.
        let mut b = ScheduleBuilder::new(4);
        b.round(vec![t(0, Key::a(0, 0), 1, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        b.round(vec![t(2, Key::a(1, 0), 3, Key::a(1, 0), Merge::Overwrite)])
            .unwrap();
        let s = b.build();
        let c = compress(&s);
        assert_eq!(c.rounds(), 1);
        equivalent(
            4,
            &[(0, Key::a(0, 0), 5), (2, Key::a(1, 0), 7)],
            &s,
            &[(1, Key::a(0, 0)), (3, Key::a(1, 0))],
        );
    }

    #[test]
    fn flow_dependencies_are_respected() {
        // Relay 0 → 1 → 2: cannot compress below 2 rounds.
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![t(0, Key::a(0, 0), 1, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        b.round(vec![t(1, Key::a(0, 0), 2, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        let s = b.build();
        let c = compress(&s);
        assert_eq!(c.rounds(), 2, "a relay needs both hops");
        equivalent(3, &[(0, Key::a(0, 0), 9)], &s, &[(2, Key::a(0, 0))]);
    }

    #[test]
    fn anti_dependency_read_then_overwrite() {
        // Round 1: node 0 sends K to node 1. Round 2: node 2 overwrites K
        // at node 0. The overwrite may move into round 1 (read-before-write
        // within a round), but not earlier, and node 1 must still see the
        // OLD value.
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![t(
            0,
            Key::tmp(0, 0),
            1,
            Key::tmp(0, 1),
            Merge::Overwrite,
        )])
        .unwrap();
        b.round(vec![t(
            2,
            Key::tmp(0, 2),
            0,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        equivalent(
            3,
            &[(0, Key::tmp(0, 0), 11), (2, Key::tmp(0, 2), 99)],
            &s,
            &[(1, Key::tmp(0, 1)), (0, Key::tmp(0, 0))],
        );
    }

    #[test]
    fn compute_dependencies_are_respected() {
        // Round 1 delivers a factor; the product must compute after it and
        // the result ships afterwards.
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![t(0, Key::a(0, 0), 1, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        b.compute(vec![LocalOp::MulAdd {
            node: NodeId(1),
            dst: Key::x(0, 0),
            lhs: Key::a(0, 0),
            rhs: Key::b(0, 0),
        }])
        .unwrap();
        b.round(vec![t(1, Key::x(0, 0), 2, Key::x(0, 0), Merge::Overwrite)])
            .unwrap();
        let s = b.build();
        let c = compress(&s);
        assert_eq!(c.rounds(), 2);
        equivalent(
            3,
            &[(0, Key::a(0, 0), 6), (1, Key::b(0, 0), 7)],
            &s,
            &[(2, Key::x(0, 0))],
        );
    }

    #[test]
    fn adds_into_one_accumulator_serialize_on_bandwidth() {
        // Three adds into node 0 from distinct sources: receive capacity
        // forces 3 rounds, compression cannot cheat.
        let mut b = ScheduleBuilder::new(4);
        for i in 1..4u32 {
            b.round(vec![t(i, Key::tmp(0, 0), 0, Key::x(0, 0), Merge::Add)])
                .unwrap();
        }
        let s = b.build();
        let c = compress(&s);
        assert_eq!(c.rounds(), 3);
        equivalent(
            4,
            &[
                (1, Key::tmp(0, 0), 1),
                (2, Key::tmp(0, 0), 2),
                (3, Key::tmp(0, 0), 4),
            ],
            &s,
            &[(0, Key::x(0, 0))],
        );
    }

    #[test]
    fn trailing_compute_is_preserved() {
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![t(0, Key::a(0, 0), 1, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        b.compute(vec![LocalOp::Copy {
            node: NodeId(1),
            dst: Key::tmp(9, 9),
            src: Key::a(0, 0),
        }])
        .unwrap();
        let s = b.build();
        equivalent(2, &[(0, Key::a(0, 0), 3)], &s, &[(1, Key::tmp(9, 9))]);
    }

    #[test]
    fn capacity_is_preserved_and_exploited() {
        // Capacity-2 schedule with two sequential rounds of sends from the
        // same source: compression packs them into one round (2 slots).
        let mut b = ScheduleBuilder::with_capacity(3, 2);
        b.round(vec![t(0, Key::a(0, 0), 1, Key::a(0, 0), Merge::Overwrite)])
            .unwrap();
        b.round(vec![t(0, Key::a(0, 1), 2, Key::a(0, 1), Merge::Overwrite)])
            .unwrap();
        let s = b.build();
        let c = compress(&s);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn same_round_read_of_overwritten_key_sees_old_value() {
        // One round does two things at once: node 0 overwrites K at node 1,
        // while node 1 forwards its OLD value of K to node 2 (within a
        // round, all reads precede all writes). Naive per-transfer
        // pipelining serializes the pair and forwards the new value; the
        // atomic-round fallback must keep the barrier semantics.
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![
            t(0, Key::a(0, 0), 1, Key::tmp(0, 0), Merge::Overwrite),
            t(1, Key::tmp(0, 0), 2, Key::tmp(0, 1), Merge::Overwrite),
        ])
        .unwrap();
        let s = b.build();
        equivalent(
            3,
            &[(0, Key::a(0, 0), 9), (1, Key::tmp(0, 0), 5)],
            &s,
            &[(1, Key::tmp(0, 0)), (2, Key::tmp(0, 1))],
        );
    }

    #[test]
    fn swap_round_stays_simultaneous() {
        // Two nodes exchange values in one round — a cyclic hazard that can
        // only execute with simultaneous delivery.
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![
            t(0, Key::tmp(0, 0), 1, Key::tmp(0, 0), Merge::Overwrite),
            t(1, Key::tmp(0, 0), 0, Key::tmp(0, 0), Merge::Overwrite),
        ])
        .unwrap();
        let s = b.build();
        equivalent(
            2,
            &[(0, Key::tmp(0, 0), 1), (1, Key::tmp(0, 0), 2)],
            &s,
            &[(0, Key::tmp(0, 0)), (1, Key::tmp(0, 0))],
        );
    }

    #[test]
    fn empty_schedule_compresses_to_empty() {
        let s = ScheduleBuilder::new(2).build();
        let c = compress(&s);
        assert_eq!(c.rounds(), 0);
        assert_eq!(c.messages(), 0);
    }

    /// Boundary values for the two round roundings at clock times 0, 1, 2.
    /// The strict form (flow/output deps) and the non-strict form (anti
    /// deps) agree at odd times and on the never-touched clock `t = 0`, and
    /// differ exactly at positive even times — `t = 2` (a round-1 event)
    /// admits round 1 for a write-after-read but forces round 2 for a
    /// read-after-write.
    #[test]
    fn rounding_helpers_boundary_values() {
        // t = 0: clock never touched — both admit the first round.
        assert_eq!(round_strictly_after(0), 1);
        assert_eq!(round_at_or_after(0), 1);
        // t = 1: compute slot 0 (before round 1) — both admit round 1.
        assert_eq!(round_strictly_after(1), 1);
        assert_eq!(round_at_or_after(1), 1);
        // t = 2: round 1 — the formulas disagree by design.
        assert_eq!(round_strictly_after(2), 2);
        assert_eq!(round_at_or_after(2), 1);
        // Compute slots act at odd times 2s + 1.
        assert_eq!(slot_at_or_after(0), 0);
        assert_eq!(slot_at_or_after(1), 0);
        assert_eq!(slot_at_or_after(2), 1, "even write time 2 forces slot 1");
    }

    /// Schedule-level pin of the `t = 2` boundary: an anti dependency on a
    /// round-1 read may share round 1, while a flow dependency on a round-1
    /// write must wait for round 2.
    #[test]
    fn round_one_clock_boundary_behaviors() {
        // Anti: round 1 reads K at node 0; the later overwrite of K joins
        // round 1 (read-before-write within a round).
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![t(
            0,
            Key::tmp(0, 0),
            1,
            Key::tmp(0, 1),
            Merge::Overwrite,
        )])
        .unwrap();
        b.round(vec![t(
            2,
            Key::tmp(0, 2),
            0,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        assert_eq!(compress(&s).rounds(), 1, "anti dep shares the round");
        equivalent(
            3,
            &[(0, Key::tmp(0, 0), 4), (2, Key::tmp(0, 2), 8)],
            &s,
            &[(1, Key::tmp(0, 1)), (0, Key::tmp(0, 0))],
        );

        // Flow: round 1 writes K at node 1; forwarding K must wait.
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![t(
            0,
            Key::tmp(0, 0),
            1,
            Key::tmp(0, 1),
            Merge::Overwrite,
        )])
        .unwrap();
        b.round(vec![t(
            1,
            Key::tmp(0, 1),
            2,
            Key::tmp(0, 2),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        assert_eq!(compress(&s).rounds(), 2, "flow dep forces the next round");
        equivalent(3, &[(0, Key::tmp(0, 0), 4)], &s, &[(2, Key::tmp(0, 2))]);

        // Output: two overwrites of the same key keep their order even
        // with capacity to spare.
        let mut b = ScheduleBuilder::with_capacity(3, 2);
        b.round(vec![t(
            0,
            Key::tmp(0, 0),
            2,
            Key::tmp(0, 9),
            Merge::Overwrite,
        )])
        .unwrap();
        b.round(vec![t(
            1,
            Key::tmp(0, 1),
            2,
            Key::tmp(0, 9),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        assert_eq!(compress(&s).rounds(), 2, "output dep keeps write order");
        equivalent(
            3,
            &[(0, Key::tmp(0, 0), 4), (1, Key::tmp(0, 1), 6)],
            &s,
            &[(2, Key::tmp(0, 9))],
        );
    }
}
