//! # `lowband-model` — the supported low-bandwidth model
//!
//! This crate implements the computational model that the paper
//! *Low-Bandwidth Matrix Multiplication: Faster Algorithms and More General
//! Forms of Sparsity* (SPAA 2024) assumes as "hardware":
//!
//! * there are `n` computers (nodes), indexed `0..n`;
//! * computation proceeds in synchronous rounds;
//! * in each round every computer can **send at most one message** and
//!   **receive at most one message** (each message is one algebra element,
//!   i.e. `O(log n)` bits in the paper's accounting);
//! * local computation is free and unbounded (Definition 6.3 of the paper).
//!
//! The *supported* aspect of the model is that the sparsity structure of an
//! instance is known in advance, so arbitrary preprocessing may depend on the
//! structure (but never on the runtime values). We realize this by splitting
//! an algorithm into two artifacts:
//!
//! 1. a [`Schedule`] — the communication/computation plan, compiled centrally
//!    from the support only, and
//! 2. a [`Machine`] execution — the runtime that carries the actual values,
//!    enforcing the bandwidth constraint round by round.
//!
//! The number of communication rounds in a schedule is exactly the paper's
//! complexity measure; [`Machine::run`] refuses to execute any round in which
//! a node would send or receive more than one message, so a completed
//! execution *is* a certificate that the algorithm respects the model.
//!
//! ## Example
//!
//! ```
//! use lowband_model::{Key, Machine, Merge, ScheduleBuilder, Transfer, NodeId};
//! use lowband_model::algebra::Nat;
//!
//! // Two computers; node 0 sends its value of A(0,0) to node 1, which
//! // accumulates it into X(0,0).
//! let mut b = ScheduleBuilder::new(2);
//! b.round(vec![Transfer {
//!     src: NodeId(0), src_key: Key::a(0, 0),
//!     dst: NodeId(1), dst_key: Key::x(0, 0),
//!     merge: Merge::Add,
//! }]).unwrap();
//! let schedule = b.build();
//! assert_eq!(schedule.rounds(), 1);
//!
//! let mut m: Machine<Nat> = Machine::new(2);
//! m.load(NodeId(0), Key::a(0, 0), Nat(7));
//! m.load(NodeId(1), Key::x(0, 0), Nat(35));
//! let stats = m.run(&schedule).unwrap();
//! assert_eq!(stats.rounds, 1);
//! assert_eq!(m.get(NodeId(1), Key::x(0, 0)), Some(&Nat(42)));
//! ```

pub mod algebra;
pub mod binser;
pub mod compress;
pub mod error;
pub mod key;
pub mod link;
pub mod machine;
pub mod parallel;
pub mod recovery;
pub mod schedule;
pub mod serial;
pub mod stats;

pub use algebra::{PackedSemiring, Semiring};
pub use binser::BinSerError;
pub use compress::{compress, compress_traced};
pub use error::ModelError;
pub use key::Key;
pub use link::{
    link, link_traced, LinkedMachine, LinkedOp, LinkedSchedule, LinkedStepView, LinkedTransfer,
    PackedLinkedMachine,
};
pub use machine::{ExecutionStats, Machine};
pub use parallel::ParallelMachine;
pub use recovery::{Checkpoint, RunWindow};
pub use schedule::{LocalOp, Merge, Round, Schedule, ScheduleBuilder, Step, Transfer};
pub use serial::{read_schedule, write_schedule};
pub use stats::ScheduleStats;

// The instrumentation substrate, re-exported so downstream crates don't
// need a separate dependency edge for the common case.
pub use lowband_trace as trace;
pub use lowband_trace::{NoopTracer, Tracer};

// The fault-injection layer, re-exported the same way: executors take any
// `FaultHook`, and `NoopFaults` keeps the hot paths fault-free.
pub use lowband_faults as faults;
pub use lowband_faults::{FaultHook, FaultPlan, FaultSpec, NoopFaults, Tamper};

/// Identifier of a real computer in the network, in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}
