//! `binser` — the versioned binary persistence format for compiled plans.
//!
//! The v1 text format (`serial.rs`) persists a [`Schedule`]; reloading one
//! still pays the full linking pass. This module persists the *linked*
//! artifact too, so a reload costs a linear byte scan instead of interning,
//! sorting and validation — the difference between a cold compile and a
//! disk hit in `lowband-serve`'s tiered plan store.
//!
//! ## Envelope
//!
//! ```text
//! offset 0   magic    8 bytes   b"LBPLAN\r\n"
//! offset 8   version  1 byte    BINSER_VERSION (then 7 zero pad bytes)
//! offset 16  section* …
//! tail       end record: tag b"ENDF" ‖ u32 0 ‖ u64 whole-file checksum
//! ```
//!
//! Each section is `tag(4) ‖ reserved u32 = 0 ‖ payload_len u64 LE ‖
//! payload ‖ zero pad to 8 ‖ u64 section checksum`. Every integer is
//! little-endian; every section header, payload and checksum starts at an
//! 8-byte-aligned offset, so dense `u32` slot-id runs and `u128` key runs
//! inside a payload can be walked (or memory-mapped) at their natural
//! alignment. Checksums are chained [`mix64`] folds over the padded
//! payload words, seeded with the payload length; the end record's
//! checksum folds over every preceding byte of the file. A chained fold is
//! position-sensitive: any single-byte change, truncation or reordering
//! changes the digest.
//!
//! ## Safety contract
//!
//! Decoding returns a typed [`BinSerError`] carrying the byte offset of
//! the problem — it never panics and never allocates proportionally to a
//! corrupted length field (declared counts are checked against the bytes
//! actually present before any buffer is reserved). Decoded [`Schedule`]s
//! are rebuilt through [`ScheduleBuilder`], re-validating the bandwidth
//! constraint; decoded [`LinkedSchedule`]s get a full structural bounds
//! check (nodes, slots, step ranges, block tables) before they are
//! returned. Semantic fidelity between the two — that the linked events
//! really are the schedule's events — is deliberately *not* re-proved
//! here: that is `lowband-check::lint_linked`'s job, and the serving
//! layer's disk tier runs it on every load before admission.

use std::collections::HashMap;
use std::ops::Range;

use lowband_faults::mix64;

use crate::link::{BlockSlots, LinkedStep};
use crate::schedule::{LocalOp, Merge, Round, Step};
use crate::{
    Key, LinkedOp, LinkedSchedule, LinkedTransfer, ModelError, NodeId, Schedule, ScheduleBuilder,
    Transfer,
};

/// First 8 bytes of every binser file. The `\r\n` tail catches
/// newline-translating transports the way PNG's magic does.
pub const BINSER_MAGIC: [u8; 8] = *b"LBPLAN\r\n";

/// The format version this build writes and the only one it reads.
pub const BINSER_VERSION: u8 = 1;

/// Tag of the end record closing every file.
pub const TAG_END: [u8; 4] = *b"ENDF";

const SECTION_SEED: u64 = 0x5EC7_C0DE_B10B_0001;

/// Errors raised while decoding a binser file. Every variant that can
/// point at bytes carries the absolute file offset of the problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BinSerError {
    /// The input ends before `needed` bytes at `offset` are available.
    Truncated {
        /// Offset of the read that failed.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The first 8 bytes are not [`BINSER_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The version byte names a format this build does not read.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
        /// The version this build supports.
        supported: u8,
    },
    /// A section (or whole-file) checksum did not match.
    ChecksumMismatch {
        /// Tag of the failing section ([`TAG_END`] for the file digest).
        section: [u8; 4],
        /// Offset of the section's first header byte.
        offset: usize,
    },
    /// A declared length or count exceeds the bytes actually present —
    /// rejected before any allocation is sized from it.
    LengthOverflow {
        /// Offset of the length field.
        offset: usize,
        /// The declared value.
        declared: u64,
        /// Bytes (or records) actually available.
        available: usize,
    },
    /// A field holds a value the format does not admit.
    Malformed {
        /// Offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: String,
    },
    /// Bytes remain after the structure that should consume them ended.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent tag.
        tag: [u8; 4],
    },
    /// A section tag appears twice.
    DuplicateSection {
        /// The repeated tag.
        tag: [u8; 4],
        /// Offset of the second occurrence.
        offset: usize,
    },
    /// The decoded schedule violated the model constraints when rebuilt
    /// through [`ScheduleBuilder`].
    Model(ModelError),
}

fn tag_str(tag: &[u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                (b as char).to_string()
            } else {
                format!("\\x{b:02x}")
            }
        })
        .collect()
}

impl std::fmt::Display for BinSerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinSerError::Truncated {
                offset,
                needed,
                have,
            } => write!(
                f,
                "truncated at offset {offset}: needed {needed} byte(s), have {have}"
            ),
            BinSerError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (not a lowband plan file)")
            }
            BinSerError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads v{supported})"
            ),
            BinSerError::ChecksumMismatch { section, offset } => write!(
                f,
                "checksum mismatch in section `{}` at offset {offset}",
                tag_str(section)
            ),
            BinSerError::LengthOverflow {
                offset,
                declared,
                available,
            } => write!(
                f,
                "length field at offset {offset} declares {declared} but only {available} available"
            ),
            BinSerError::Malformed { offset, what } => {
                write!(f, "malformed field at offset {offset}: {what}")
            }
            BinSerError::TrailingBytes { offset } => {
                write!(f, "trailing bytes at offset {offset}")
            }
            BinSerError::MissingSection { tag } => {
                write!(f, "missing required section `{}`", tag_str(tag))
            }
            BinSerError::DuplicateSection { tag, offset } => {
                write!(f, "duplicate section `{}` at offset {offset}", tag_str(tag))
            }
            BinSerError::Model(e) => write!(f, "decoded schedule violates the model: {e}"),
        }
    }
}

impl std::error::Error for BinSerError {}

impl From<ModelError> for BinSerError {
    fn from(e: ModelError) -> BinSerError {
        BinSerError::Model(e)
    }
}

/// Chained mix64 over little-endian 8-byte words: `h ← mix64(h ⊕ w)`.
/// `bytes.len()` must be a multiple of 8 (writers pad; readers check).
fn checksum_words(seed: u64, bytes: &[u8]) -> u64 {
    debug_assert_eq!(bytes.len() % 8, 0);
    let mut h = mix64(seed);
    for chunk in bytes.chunks_exact(8) {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        h = mix64(h ^ w);
    }
    h
}

fn section_checksum(payload_len: u64, padded: &[u8]) -> u64 {
    checksum_words(SECTION_SEED ^ payload_len, padded)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builds a binser file in memory: magic + version, then sections, then
/// the end record with the whole-file checksum.
pub struct FileWriter {
    buf: Vec<u8>,
}

impl Default for FileWriter {
    fn default() -> FileWriter {
        FileWriter::new()
    }
}

impl FileWriter {
    /// A writer holding the 16-byte header (magic, version, padding).
    pub fn new() -> FileWriter {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&BINSER_MAGIC);
        buf.push(BINSER_VERSION);
        buf.extend_from_slice(&[0u8; 7]);
        FileWriter { buf }
    }

    /// Append one section: header, payload (zero-padded to 8 bytes) and
    /// section checksum.
    pub fn section(&mut self, tag: [u8; 4], payload: &[u8]) {
        debug_assert_ne!(tag, TAG_END, "ENDF is written by finish()");
        self.buf.extend_from_slice(&tag);
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let start = self.buf.len();
        self.buf.extend_from_slice(payload);
        while !(self.buf.len() - start).is_multiple_of(8) {
            self.buf.push(0);
        }
        let sum = section_checksum(payload.len() as u64, &self.buf[start..]);
        self.buf.extend_from_slice(&sum.to_le_bytes());
    }

    /// Close the file: append the end record carrying the checksum of
    /// every byte written so far, and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum_words(SECTION_SEED ^ self.buf.len() as u64, &self.buf);
        self.buf.extend_from_slice(&TAG_END);
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One section located inside a binser file (for boundary-aware tooling
/// such as the corruption-fuzz battery).
#[derive(Clone, Debug)]
pub struct SectionSpan {
    /// The section tag ([`TAG_END`] for the end record).
    pub tag: [u8; 4],
    /// The whole record: header through checksum.
    pub record: Range<usize>,
    /// The unpadded payload bytes (empty for the end record).
    pub payload: Range<usize>,
}

/// A parsed binser envelope: magic, version and every section checksum
/// verified up front, payloads addressable by tag.
pub struct FileReader<'a> {
    bytes: &'a [u8],
    spans: Vec<SectionSpan>,
}

impl<'a> FileReader<'a> {
    /// Parse and verify the envelope. Section payloads are *not*
    /// interpreted here — only located and checksummed.
    pub fn new(bytes: &'a [u8]) -> Result<FileReader<'a>, BinSerError> {
        if bytes.len() < 16 {
            return Err(BinSerError::Truncated {
                offset: 0,
                needed: 16,
                have: bytes.len(),
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[..8]);
        if magic != BINSER_MAGIC {
            return Err(BinSerError::BadMagic { found: magic });
        }
        if bytes[8] != BINSER_VERSION {
            return Err(BinSerError::UnsupportedVersion {
                found: bytes[8],
                supported: BINSER_VERSION,
            });
        }
        let mut spans: Vec<SectionSpan> = Vec::new();
        let mut off = 16usize;
        loop {
            if bytes.len() - off < 16 {
                return Err(BinSerError::Truncated {
                    offset: off,
                    needed: 16,
                    have: bytes.len() - off,
                });
            }
            let mut tag = [0u8; 4];
            tag.copy_from_slice(&bytes[off..off + 4]);
            let reserved = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if reserved != 0 {
                return Err(BinSerError::Malformed {
                    offset: off + 4,
                    what: format!("reserved header word is {reserved}, expected 0"),
                });
            }
            if tag == TAG_END {
                let declared = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
                let actual = checksum_words(SECTION_SEED ^ off as u64, &bytes[..off]);
                if declared != actual {
                    return Err(BinSerError::ChecksumMismatch {
                        section: TAG_END,
                        offset: off,
                    });
                }
                if off + 16 != bytes.len() {
                    return Err(BinSerError::TrailingBytes { offset: off + 16 });
                }
                spans.push(SectionSpan {
                    tag,
                    record: off..off + 16,
                    payload: off + 16..off + 16,
                });
                return Ok(FileReader { bytes, spans });
            }
            let len = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            let payload_start = off + 16;
            let remaining = bytes.len() - payload_start;
            // The padded payload plus its 8-byte checksum must fit in what
            // is actually present — this is the no-OOM gate for inflated
            // length fields.
            if len > remaining as u64 {
                return Err(BinSerError::LengthOverflow {
                    offset: off + 8,
                    declared: len,
                    available: remaining,
                });
            }
            let len = len as usize;
            let padded_len = len.div_ceil(8) * 8;
            if padded_len + 8 > remaining {
                return Err(BinSerError::Truncated {
                    offset: payload_start,
                    needed: padded_len + 8,
                    have: remaining,
                });
            }
            let padded = &bytes[payload_start..payload_start + padded_len];
            if padded[len..].iter().any(|&b| b != 0) {
                return Err(BinSerError::Malformed {
                    offset: payload_start + len,
                    what: "non-zero padding".to_string(),
                });
            }
            let declared_sum = u64::from_le_bytes(
                bytes[payload_start + padded_len..payload_start + padded_len + 8]
                    .try_into()
                    .unwrap(),
            );
            if declared_sum != section_checksum(len as u64, padded) {
                return Err(BinSerError::ChecksumMismatch {
                    section: tag,
                    offset: off,
                });
            }
            if spans.iter().any(|s| s.tag == tag) {
                return Err(BinSerError::DuplicateSection { tag, offset: off });
            }
            spans.push(SectionSpan {
                tag,
                record: off..payload_start + padded_len + 8,
                payload: payload_start..payload_start + len,
            });
            off = payload_start + padded_len + 8;
        }
    }

    /// The payload of the section with this tag and its absolute offset,
    /// if present. Payloads always start at an 8-byte-aligned offset.
    pub fn section(&self, tag: [u8; 4]) -> Option<(&'a [u8], usize)> {
        self.spans
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| (&self.bytes[s.payload.clone()], s.payload.start))
    }

    /// Like [`FileReader::section`] but an error when absent.
    pub fn require(&self, tag: [u8; 4]) -> Result<(&'a [u8], usize), BinSerError> {
        self.section(tag).ok_or(BinSerError::MissingSection { tag })
    }

    /// Every section in file order (the end record last) — the boundary
    /// map the corruption-fuzz battery truncates at.
    pub fn spans(&self) -> &[SectionSpan] {
        &self.spans
    }
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

/// Little-endian cursor over one section payload. `base` is the payload's
/// absolute file offset, so errors point into the file, not the section.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `bytes`, reporting offsets from `base`.
    pub fn new(bytes: &'a [u8], base: usize) -> ByteReader<'a> {
        ByteReader {
            bytes,
            pos: 0,
            base,
        }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinSerError> {
        if self.remaining() < n {
            return Err(BinSerError::Truncated {
                offset: self.offset(),
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one `u8`.
    pub fn u8(&mut self) -> Result<u8, BinSerError> {
        Ok(self.take(1)?[0])
    }

    /// Read one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinSerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinSerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read one little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, BinSerError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read a `u64` count of records at least `min_record` bytes each,
    /// refusing counts the remaining bytes cannot possibly hold — the
    /// guard that keeps an inflated count from sizing an allocation.
    pub fn count(&mut self, min_record: usize) -> Result<usize, BinSerError> {
        debug_assert!(min_record >= 1);
        let at = self.offset();
        let declared = self.u64()?;
        let available = self.remaining() / min_record;
        if declared > available as u64 {
            return Err(BinSerError::LengthOverflow {
                offset: at,
                declared,
                available,
            });
        }
        Ok(declared as usize)
    }

    /// Require the payload to be fully consumed.
    pub fn done(&self) -> Result<(), BinSerError> {
        if self.remaining() != 0 {
            return Err(BinSerError::TrailingBytes {
                offset: self.offset(),
            });
        }
        Ok(())
    }
}

fn malformed(offset: usize, what: impl Into<String>) -> BinSerError {
    BinSerError::Malformed {
        offset,
        what: what.into(),
    }
}

// ---------------------------------------------------------------------------
// Schedule payload codec
// ---------------------------------------------------------------------------

const STEP_COMM: u8 = 0;
const STEP_COMPUTE: u8 = 1;

const OP_MUL: u8 = 0;
const OP_ADD_ASSIGN: u8 = 1;
const OP_MUL_ADD: u8 = 2;
const OP_SUB_ASSIGN: u8 = 3;
const OP_BLOCK_MUL_ADD: u8 = 4;
const OP_COPY: u8 = 5;
const OP_ZERO: u8 = 6;
const OP_FREE: u8 = 7;

/// Append the schedule payload (record-wise, not alignment-sensitive:
/// schedules decode through [`ScheduleBuilder`], never zero-copy).
pub fn encode_schedule(s: &Schedule, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.n() as u64).to_le_bytes());
    out.extend_from_slice(&(s.capacity() as u64).to_le_bytes());
    out.extend_from_slice(&(s.steps().len() as u64).to_le_bytes());
    for step in s.steps() {
        match step {
            Step::Comm(Round { transfers }) => {
                out.push(STEP_COMM);
                out.extend_from_slice(&(transfers.len() as u64).to_le_bytes());
                for t in transfers {
                    out.extend_from_slice(&t.src.0.to_le_bytes());
                    out.extend_from_slice(&t.dst.0.to_le_bytes());
                    out.push(match t.merge {
                        Merge::Overwrite => 0,
                        Merge::Add => 1,
                    });
                    out.extend_from_slice(&t.src_key.to_raw().to_le_bytes());
                    out.extend_from_slice(&t.dst_key.to_raw().to_le_bytes());
                }
            }
            Step::Compute(ops) => {
                out.push(STEP_COMPUTE);
                out.extend_from_slice(&(ops.len() as u64).to_le_bytes());
                for op in ops {
                    encode_local_op(op, out);
                }
            }
        }
    }
}

fn encode_local_op(op: &LocalOp, out: &mut Vec<u8>) {
    let key = |k: Key, out: &mut Vec<u8>| out.extend_from_slice(&k.to_raw().to_le_bytes());
    match *op {
        LocalOp::Mul {
            node,
            dst,
            lhs,
            rhs,
        } => {
            out.push(OP_MUL);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
            key(lhs, out);
            key(rhs, out);
        }
        LocalOp::AddAssign { node, dst, src } => {
            out.push(OP_ADD_ASSIGN);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
            key(src, out);
        }
        LocalOp::MulAdd {
            node,
            dst,
            lhs,
            rhs,
        } => {
            out.push(OP_MUL_ADD);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
            key(lhs, out);
            key(rhs, out);
        }
        LocalOp::SubAssign { node, dst, src } => {
            out.push(OP_SUB_ASSIGN);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
            key(src, out);
        }
        LocalOp::BlockMulAdd {
            node,
            dim,
            a_ns,
            b_ns,
            c_ns,
        } => {
            out.push(OP_BLOCK_MUL_ADD);
            out.extend_from_slice(&node.0.to_le_bytes());
            out.extend_from_slice(&dim.to_le_bytes());
            out.extend_from_slice(&a_ns.to_le_bytes());
            out.extend_from_slice(&b_ns.to_le_bytes());
            out.extend_from_slice(&c_ns.to_le_bytes());
        }
        LocalOp::Copy { node, dst, src } => {
            out.push(OP_COPY);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
            key(src, out);
        }
        LocalOp::Zero { node, dst } => {
            out.push(OP_ZERO);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(dst, out);
        }
        LocalOp::Free { node, key: k } => {
            out.push(OP_FREE);
            out.extend_from_slice(&node.0.to_le_bytes());
            key(k, out);
        }
    }
}

/// Decode a schedule payload, rebuilding through [`ScheduleBuilder`] so
/// the bandwidth constraint is re-proved on load. `base` is the payload's
/// absolute file offset (0 for standalone payloads).
pub fn decode_schedule(payload: &[u8], base: usize) -> Result<Schedule, BinSerError> {
    let mut rd = ByteReader::new(payload, base);
    let n_at = rd.offset();
    let n = rd.u64()?;
    if n > u64::from(u32::MAX) {
        return Err(malformed(
            n_at,
            format!("n = {n} exceeds the u32 node space"),
        ));
    }
    let cap_at = rd.offset();
    let capacity = rd.u64()?;
    if capacity == 0 {
        return Err(malformed(cap_at, "capacity must be at least 1"));
    }
    if capacity > u64::from(u32::MAX) {
        return Err(malformed(
            cap_at,
            format!("capacity {capacity} out of range"),
        ));
    }
    let steps = rd.count(9)?; // each step is at least kind(1) + count(8)
    let mut b = ScheduleBuilder::with_capacity(n as usize, capacity as usize);
    for _ in 0..steps {
        let kind_at = rd.offset();
        match rd.u8()? {
            STEP_COMM => {
                let count = rd.count(41)?; // src+dst(8) merge(1) keys(32)
                let mut transfers = Vec::with_capacity(count);
                for _ in 0..count {
                    let src = rd.u32()?;
                    let dst = rd.u32()?;
                    let merge_at = rd.offset();
                    let merge = match rd.u8()? {
                        0 => Merge::Overwrite,
                        1 => Merge::Add,
                        other => return Err(malformed(merge_at, format!("bad merge tag {other}"))),
                    };
                    let src_key = Key::from_raw(rd.u128()?);
                    let dst_key = Key::from_raw(rd.u128()?);
                    transfers.push(Transfer {
                        src: NodeId(src),
                        src_key,
                        dst: NodeId(dst),
                        dst_key,
                        merge,
                    });
                }
                b.round(transfers)?;
            }
            STEP_COMPUTE => {
                let count_at = rd.offset();
                let count = rd.count(5)?; // tag(1) + node(4) minimum
                if count == 0 {
                    // ScheduleBuilder drops empty compute blocks, so an
                    // empty section could never round-trip — reject it.
                    return Err(malformed(count_at, "empty compute section"));
                }
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    ops.push(decode_local_op(&mut rd)?);
                }
                b.compute(ops)?;
            }
            other => return Err(malformed(kind_at, format!("bad step kind {other}"))),
        }
    }
    rd.done()?;
    Ok(b.build())
}

fn decode_local_op(rd: &mut ByteReader<'_>) -> Result<LocalOp, BinSerError> {
    let tag_at = rd.offset();
    let tag = rd.u8()?;
    let node = NodeId(rd.u32()?);
    let op = match tag {
        OP_MUL => LocalOp::Mul {
            node,
            dst: Key::from_raw(rd.u128()?),
            lhs: Key::from_raw(rd.u128()?),
            rhs: Key::from_raw(rd.u128()?),
        },
        OP_ADD_ASSIGN => LocalOp::AddAssign {
            node,
            dst: Key::from_raw(rd.u128()?),
            src: Key::from_raw(rd.u128()?),
        },
        OP_MUL_ADD => LocalOp::MulAdd {
            node,
            dst: Key::from_raw(rd.u128()?),
            lhs: Key::from_raw(rd.u128()?),
            rhs: Key::from_raw(rd.u128()?),
        },
        OP_SUB_ASSIGN => LocalOp::SubAssign {
            node,
            dst: Key::from_raw(rd.u128()?),
            src: Key::from_raw(rd.u128()?),
        },
        OP_BLOCK_MUL_ADD => LocalOp::BlockMulAdd {
            node,
            dim: rd.u32()?,
            a_ns: rd.u64()?,
            b_ns: rd.u64()?,
            c_ns: rd.u64()?,
        },
        OP_COPY => LocalOp::Copy {
            node,
            dst: Key::from_raw(rd.u128()?),
            src: Key::from_raw(rd.u128()?),
        },
        OP_ZERO => LocalOp::Zero {
            node,
            dst: Key::from_raw(rd.u128()?),
        },
        OP_FREE => LocalOp::Free {
            node,
            key: Key::from_raw(rd.u128()?),
        },
        other => return Err(malformed(tag_at, format!("bad op tag {other}"))),
    };
    Ok(op)
}

// ---------------------------------------------------------------------------
// LinkedSchedule payload codec
// ---------------------------------------------------------------------------

const LOP_MUL: u32 = 0;
const LOP_ADD_ASSIGN: u32 = 1;
const LOP_MUL_ADD: u32 = 2;
const LOP_SUB_ASSIGN: u32 = 3;
const LOP_BLOCK_MUL_ADD: u32 = 4;
const LOP_COPY: u32 = 5;
const LOP_ZERO: u32 = 6;
const LOP_FREE: u32 = 7;

/// Append the linked payload: header words, per-node key runs, then the
/// step/transfer/op/block tables as dense fixed-stride runs (u128 key
/// runs at 16-byte stride from an 8-aligned base; transfer and op records
/// at 20-byte stride of `u32` words — 4-byte alignment, which is all a
/// `u32` load needs).
pub fn encode_linked(ls: &LinkedSchedule, out: &mut Vec<u8>) {
    out.extend_from_slice(&(ls.n as u64).to_le_bytes());
    out.extend_from_slice(&(ls.capacity as u64).to_le_bytes());
    out.extend_from_slice(&(ls.rounds as u64).to_le_bytes());
    out.extend_from_slice(&(ls.messages as u64).to_le_bytes());
    for keys in &ls.node_keys {
        out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            out.extend_from_slice(&k.to_raw().to_le_bytes());
        }
    }
    out.extend_from_slice(&(ls.steps.len() as u64).to_le_bytes());
    for step in &ls.steps {
        let (kind, range, src) = match step {
            LinkedStep::Comm { transfers, step } => (0u32, transfers, *step),
            LinkedStep::Compute { ops, step } => (1u32, ops, *step),
        };
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(range.start as u64).to_le_bytes());
        out.extend_from_slice(&(range.end as u64).to_le_bytes());
        out.extend_from_slice(&(src as u64).to_le_bytes());
    }
    out.extend_from_slice(&(ls.transfers.len() as u64).to_le_bytes());
    for t in &ls.transfers {
        out.extend_from_slice(&t.src.to_le_bytes());
        out.extend_from_slice(&t.src_slot.to_le_bytes());
        out.extend_from_slice(&t.dst.to_le_bytes());
        out.extend_from_slice(&t.dst_slot.to_le_bytes());
        out.extend_from_slice(
            &match t.merge {
                Merge::Overwrite => 0u32,
                Merge::Add => 1u32,
            }
            .to_le_bytes(),
        );
    }
    out.extend_from_slice(&(ls.ops.len() as u64).to_le_bytes());
    for op in &ls.ops {
        let (tag, node, x, y, z) = match *op {
            LinkedOp::Mul {
                node,
                dst,
                lhs,
                rhs,
            } => (LOP_MUL, node, dst, lhs, rhs),
            LinkedOp::AddAssign { node, dst, src } => (LOP_ADD_ASSIGN, node, dst, src, 0),
            LinkedOp::MulAdd {
                node,
                dst,
                lhs,
                rhs,
            } => (LOP_MUL_ADD, node, dst, lhs, rhs),
            LinkedOp::SubAssign { node, dst, src } => (LOP_SUB_ASSIGN, node, dst, src, 0),
            LinkedOp::BlockMulAdd { node, block } => (LOP_BLOCK_MUL_ADD, node, block, 0, 0),
            LinkedOp::Copy { node, dst, src } => (LOP_COPY, node, dst, src, 0),
            LinkedOp::Zero { node, dst } => (LOP_ZERO, node, dst, 0, 0),
            LinkedOp::Free { node, slot } => (LOP_FREE, node, slot, 0, 0),
        };
        for w in [tag, node, x, y, z] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out.extend_from_slice(&(ls.blocks.len() as u64).to_le_bytes());
    for b in &ls.blocks {
        out.extend_from_slice(&u64::from(b.dim).to_le_bytes());
        for run in [&b.a, &b.b, &b.c] {
            for &slot in run.iter() {
                out.extend_from_slice(&slot.to_le_bytes());
            }
        }
    }
}

/// Decode a linked payload and run the full structural bounds check (see
/// the module docs for what that does and does not prove). `base` is the
/// payload's absolute file offset.
pub fn decode_linked(payload: &[u8], base: usize) -> Result<LinkedSchedule, BinSerError> {
    let mut rd = ByteReader::new(payload, base);
    let n_at = rd.offset();
    let n = rd.u64()?;
    if n > u64::from(u32::MAX) {
        return Err(malformed(
            n_at,
            format!("n = {n} exceeds the u32 node space"),
        ));
    }
    let n = n as usize;
    if n as u64 > (rd.remaining() / 8) as u64 {
        return Err(BinSerError::LengthOverflow {
            offset: n_at,
            declared: n as u64,
            available: rd.remaining() / 8,
        });
    }
    let cap_at = rd.offset();
    let capacity = rd.u64()?;
    if capacity == 0 {
        return Err(malformed(cap_at, "capacity must be at least 1"));
    }
    let capacity = capacity as usize;
    let rounds = rd.u64()? as usize;
    let messages = rd.u64()? as usize;

    let mut node_keys: Vec<Vec<Key>> = Vec::with_capacity(n);
    let mut node_slots: Vec<HashMap<Key, u32>> = Vec::with_capacity(n);
    for node in 0..n {
        let count_at = rd.offset();
        let count = rd.count(16)?;
        if count > u32::MAX as usize {
            return Err(malformed(
                count_at,
                format!("node {node} declares {count} slots (u32 slot space)"),
            ));
        }
        let mut keys = Vec::with_capacity(count);
        let mut slots = HashMap::with_capacity(count);
        for slot in 0..count {
            let key_at = rd.offset();
            let key = Key::from_raw(rd.u128()?);
            if slots.insert(key, slot as u32).is_some() {
                return Err(malformed(
                    key_at,
                    format!("node {node} interns key {key:?} twice"),
                ));
            }
            keys.push(key);
        }
        node_keys.push(keys);
        node_slots.push(slots);
    }

    let step_count = rd.count(32)?;
    let mut raw_steps = Vec::with_capacity(step_count);
    for _ in 0..step_count {
        let kind_at = rd.offset();
        let kind = rd.u32()?;
        let pad_at = rd.offset();
        let pad = rd.u32()?;
        if pad != 0 {
            return Err(malformed(pad_at, format!("step pad word is {pad}")));
        }
        let start = rd.u64()? as usize;
        let end_at = rd.offset();
        let end = rd.u64()? as usize;
        if start > end {
            return Err(malformed(end_at, format!("inverted range {start}..{end}")));
        }
        let src_step = rd.u64()? as usize;
        if kind > 1 {
            return Err(malformed(kind_at, format!("bad step kind {kind}")));
        }
        raw_steps.push((kind, start..end, src_step, kind_at));
    }

    let transfer_count = rd.count(20)?;
    let mut transfers = Vec::with_capacity(transfer_count);
    for _ in 0..transfer_count {
        let src = rd.u32()?;
        let src_slot = rd.u32()?;
        let dst = rd.u32()?;
        let dst_slot = rd.u32()?;
        let merge_at = rd.offset();
        let merge = match rd.u32()? {
            0 => Merge::Overwrite,
            1 => Merge::Add,
            other => return Err(malformed(merge_at, format!("bad merge tag {other}"))),
        };
        transfers.push(LinkedTransfer {
            src,
            src_slot,
            dst,
            dst_slot,
            merge,
        });
    }

    let op_count = rd.count(20)?;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let tag_at = rd.offset();
        let tag = rd.u32()?;
        let node = rd.u32()?;
        let x = rd.u32()?;
        let y = rd.u32()?;
        let z = rd.u32()?;
        let op = match tag {
            LOP_MUL => LinkedOp::Mul {
                node,
                dst: x,
                lhs: y,
                rhs: z,
            },
            LOP_ADD_ASSIGN => LinkedOp::AddAssign {
                node,
                dst: x,
                src: y,
            },
            LOP_MUL_ADD => LinkedOp::MulAdd {
                node,
                dst: x,
                lhs: y,
                rhs: z,
            },
            LOP_SUB_ASSIGN => LinkedOp::SubAssign {
                node,
                dst: x,
                src: y,
            },
            LOP_BLOCK_MUL_ADD => LinkedOp::BlockMulAdd { node, block: x },
            LOP_COPY => LinkedOp::Copy {
                node,
                dst: x,
                src: y,
            },
            LOP_ZERO => LinkedOp::Zero { node, dst: x },
            LOP_FREE => LinkedOp::Free { node, slot: x },
            other => return Err(malformed(tag_at, format!("bad linked-op tag {other}"))),
        };
        ops.push(op);
    }

    let block_count = rd.count(8)?;
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        let dim_at = rd.offset();
        let dim = rd.u64()?;
        if dim > u64::from(u16::MAX) {
            return Err(malformed(dim_at, format!("block dim {dim} out of range")));
        }
        let dim = dim as u32;
        let cells = (dim as usize) * (dim as usize);
        if cells
            .checked_mul(3)
            .and_then(|c| c.checked_mul(4))
            .is_none_or(|bytes| bytes > rd.remaining())
        {
            return Err(BinSerError::LengthOverflow {
                offset: dim_at,
                declared: u64::from(dim),
                available: rd.remaining(),
            });
        }
        let mut runs = [Vec::new(), Vec::new(), Vec::new()];
        for run in &mut runs {
            run.reserve_exact(cells);
            for _ in 0..cells {
                run.push(rd.u32()?);
            }
        }
        let [a, b, c] = runs;
        blocks.push(BlockSlots { dim, a, b, c });
    }
    rd.done()?;

    // Structural bounds check: every index decoded above must land inside
    // the arrays decoded alongside it, and the step tables must partition
    // the flat event arrays exactly. An artifact passing this check can be
    // *executed* without out-of-bounds access; whether it faithfully
    // mirrors its source schedule is the linter's question.
    let slot_count = |node: u32| node_keys[node as usize].len() as u32;
    let check_node = |node: u32, what: &str| -> Result<(), BinSerError> {
        if (node as usize) < n {
            Ok(())
        } else {
            Err(malformed(base, format!("{what}: node {node} out of range")))
        }
    };
    let check_slot = |node: u32, slot: u32, what: &str| -> Result<(), BinSerError> {
        if slot < slot_count(node) {
            Ok(())
        } else {
            Err(malformed(
                base,
                format!("{what}: slot {slot} out of range on node {node}"),
            ))
        }
    };
    for t in &transfers {
        check_node(t.src, "transfer src")?;
        check_node(t.dst, "transfer dst")?;
        check_slot(t.src, t.src_slot, "transfer src")?;
        check_slot(t.dst, t.dst_slot, "transfer dst")?;
    }
    for op in &ops {
        let node = op.node();
        check_node(node, "op")?;
        match *op {
            LinkedOp::Mul { dst, lhs, rhs, .. } | LinkedOp::MulAdd { dst, lhs, rhs, .. } => {
                check_slot(node, dst, "op dst")?;
                check_slot(node, lhs, "op lhs")?;
                check_slot(node, rhs, "op rhs")?;
            }
            LinkedOp::AddAssign { dst, src, .. }
            | LinkedOp::SubAssign { dst, src, .. }
            | LinkedOp::Copy { dst, src, .. } => {
                check_slot(node, dst, "op dst")?;
                check_slot(node, src, "op src")?;
            }
            LinkedOp::Zero { dst, .. } => check_slot(node, dst, "op dst")?,
            LinkedOp::Free { slot, .. } => check_slot(node, slot, "op slot")?,
            LinkedOp::BlockMulAdd { block, .. } => {
                let b = blocks.get(block as usize).ok_or_else(|| {
                    malformed(base, format!("op references missing block {block}"))
                })?;
                let cells = (b.dim as usize) * (b.dim as usize);
                if b.a.len() != cells || b.b.len() != cells || b.c.len() != cells {
                    return Err(malformed(
                        base,
                        format!("block {block} slot runs disagree with dim {}", b.dim),
                    ));
                }
                for run in [&b.a, &b.b, &b.c] {
                    for &slot in run.iter() {
                        check_slot(node, slot, "block slot")?;
                    }
                }
            }
        }
    }
    let mut next_transfer = 0usize;
    let mut next_op = 0usize;
    let mut comm_steps = 0usize;
    let mut steps = Vec::with_capacity(raw_steps.len());
    for (kind, range, src_step, at) in raw_steps {
        let (cursor, total) = if kind == 0 {
            (&mut next_transfer, transfers.len())
        } else {
            (&mut next_op, ops.len())
        };
        if range.start != *cursor || range.end > total {
            return Err(malformed(
                malformed_at(at),
                format!(
                    "step range {}..{} does not continue the event arrays",
                    range.start, range.end
                ),
            ));
        }
        *cursor = range.end;
        if kind == 0 {
            comm_steps += 1;
            steps.push(LinkedStep::Comm {
                transfers: range,
                step: src_step,
            });
        } else {
            steps.push(LinkedStep::Compute {
                ops: range,
                step: src_step,
            });
        }
    }
    if next_transfer != transfers.len() || next_op != ops.len() {
        return Err(malformed(base, "step ranges do not cover the event arrays"));
    }
    if comm_steps != rounds {
        return Err(malformed(
            base,
            format!("header declares {rounds} round(s), steps hold {comm_steps}"),
        ));
    }
    if messages != transfers.len() {
        return Err(malformed(
            base,
            format!(
                "header declares {messages} message(s), transfer table holds {}",
                transfers.len()
            ),
        ));
    }

    Ok(LinkedSchedule {
        n,
        capacity,
        rounds,
        messages,
        node_keys,
        node_slots,
        steps,
        transfers,
        ops,
        blocks,
    })
}

fn malformed_at(offset: usize) -> usize {
    offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::{link, LinkedMachine, Machine};

    fn sample_schedule() -> Schedule {
        let mut b = ScheduleBuilder::with_capacity(4, 2);
        b.compute(vec![LocalOp::Zero {
            node: NodeId(0),
            dst: Key::x(0, 0),
        }])
        .unwrap();
        b.round(vec![
            Transfer {
                src: NodeId(1),
                src_key: Key::a(1, 2),
                dst: NodeId(0),
                dst_key: Key::x(0, 0),
                merge: Merge::Add,
            },
            Transfer {
                src: NodeId(2),
                src_key: Key::b(2, 3),
                dst: NodeId(3),
                dst_key: Key::tmp(7, 8),
                merge: Merge::Overwrite,
            },
            Transfer {
                src: NodeId(1),
                src_key: Key::a(1, 3),
                dst: NodeId(2),
                dst_key: Key::tmp(1, 1),
                merge: Merge::Overwrite,
            },
        ])
        .unwrap();
        b.compute(vec![
            LocalOp::MulAdd {
                node: NodeId(3),
                dst: Key::x(3, 3),
                lhs: Key::tmp(7, 8),
                rhs: Key::tmp(7, 8),
            },
            LocalOp::Free {
                node: NodeId(2),
                key: Key::tmp(1, 1),
            },
        ])
        .unwrap();
        b.build()
    }

    fn roundtrip_file(s: &Schedule) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_schedule(s, &mut payload);
        let mut w = FileWriter::new();
        w.section(*b"SCHD", &payload);
        w.finish()
    }

    #[test]
    fn schedule_payload_roundtrip() {
        let s = sample_schedule();
        let mut payload = Vec::new();
        encode_schedule(&s, &mut payload);
        let back = decode_schedule(&payload, 0).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn linked_payload_roundtrip_executes_identically() {
        let s = sample_schedule();
        let ls = link(&s).unwrap();
        let mut payload = Vec::new();
        encode_linked(&ls, &mut payload);
        let back = decode_linked(&payload, 0).unwrap();
        assert_eq!(back.rounds(), ls.rounds());
        assert_eq!(back.messages(), ls.messages());
        assert_eq!(back.total_slots(), ls.total_slots());

        let loads = [
            (NodeId(1), Key::a(1, 2), Nat(5)),
            (NodeId(1), Key::a(1, 3), Nat(9)),
            (NodeId(2), Key::b(2, 3), Nat(6)),
        ];
        let mut reference: Machine<Nat> = Machine::new(4);
        let mut pristine: LinkedMachine<Nat> = LinkedMachine::new(&ls);
        let mut reloaded: LinkedMachine<Nat> = LinkedMachine::new(&back);
        for (node, key, v) in loads {
            reference.load(node, key, v);
            pristine.load(node, key, v);
            reloaded.load(node, key, v);
        }
        let s0 = reference.run(&s).unwrap();
        let s1 = pristine.run().unwrap();
        let s2 = reloaded.run().unwrap();
        assert_eq!(s0, s1);
        assert_eq!(s1, s2);
        for node in 0..4 {
            assert_eq!(
                pristine.snapshot(NodeId(node)),
                reloaded.snapshot(NodeId(node)),
                "node {node} diverges after binser roundtrip"
            );
        }
    }

    #[test]
    fn envelope_roundtrip_and_spans() {
        let s = sample_schedule();
        let bytes = roundtrip_file(&s);
        let r = FileReader::new(&bytes).unwrap();
        let (payload, base) = r.require(*b"SCHD").unwrap();
        assert_eq!(base % 8, 0, "payloads are 8-aligned");
        let back = decode_schedule(payload, base).unwrap();
        assert_eq!(back, s);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].tag, TAG_END);
        assert_eq!(spans[1].record.end, bytes.len());
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let s = sample_schedule();
        let mut bytes = roundtrip_file(&s);
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(
            FileReader::new(&wrong),
            Err(BinSerError::BadMagic { .. })
        ));
        bytes[8] = BINSER_VERSION + 1;
        assert!(matches!(
            FileReader::new(&bytes),
            Err(BinSerError::UnsupportedVersion { found, supported })
                if found == BINSER_VERSION + 1 && supported == BINSER_VERSION
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let s = sample_schedule();
        let bytes = roundtrip_file(&s);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            let outcome = FileReader::new(&corrupt)
                .and_then(|r| r.require(*b"SCHD").map(|(p, b)| (p.to_vec(), b)))
                .and_then(|(p, b)| decode_schedule(&p, b));
            assert!(outcome.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let s = sample_schedule();
        let bytes = roundtrip_file(&s);
        for len in 0..bytes.len() {
            assert!(
                FileReader::new(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn inflated_length_field_is_rejected_without_allocation() {
        let s = sample_schedule();
        let mut bytes = roundtrip_file(&s);
        // The SCHD payload_len lives at offset 24 (header 16 + tag 4 +
        // reserved 4). Inflate it to an absurd value: the reader must
        // refuse with LengthOverflow before sizing anything from it.
        bytes[24..32].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            FileReader::new(&bytes),
            Err(BinSerError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn inflated_record_count_is_rejected_without_allocation() {
        let s = sample_schedule();
        let mut payload = Vec::new();
        encode_schedule(&s, &mut payload);
        // Step-count word (third u64): inflate it.
        payload[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_schedule(&payload, 0),
            Err(BinSerError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn duplicate_and_missing_sections_are_typed() {
        let s = sample_schedule();
        let mut payload = Vec::new();
        encode_schedule(&s, &mut payload);
        let mut w = FileWriter::new();
        w.section(*b"SCHD", &payload);
        w.section(*b"SCHD", &payload);
        assert!(matches!(
            FileReader::new(&w.finish()),
            Err(BinSerError::DuplicateSection { .. })
        ));
        let mut w = FileWriter::new();
        w.section(*b"OTHR", &payload);
        let bytes = w.finish();
        let r = FileReader::new(&bytes).unwrap();
        assert!(matches!(
            r.require(*b"SCHD"),
            Err(BinSerError::MissingSection { .. })
        ));
    }

    #[test]
    fn empty_compute_section_is_rejected() {
        // Hand-build a payload: n=1, capacity=1, one compute step with a
        // zero op count — the builder would silently drop it, so the
        // decoder must refuse it instead of round-tripping asymmetrically.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(STEP_COMPUTE);
        payload.extend_from_slice(&0u64.to_le_bytes());
        let e = decode_schedule(&payload, 0).unwrap_err();
        assert!(matches!(e, BinSerError::Malformed { .. }), "{e}");
        assert!(e.to_string().contains("empty compute"));
    }

    #[test]
    fn linked_bounds_violations_are_typed_not_panics() {
        let s = sample_schedule();
        let ls = link(&s).unwrap();
        let mut payload = Vec::new();
        encode_linked(&ls, &mut payload);
        // Walk every u32-aligned word, overwrite with a huge value, and
        // require a typed error or a decode identical to the pristine one
        // (some words — e.g. source-step indices — are diagnostic only).
        let pristine = decode_linked(&payload, 0).unwrap();
        for word in 0..payload.len() / 4 {
            let mut corrupt = payload.clone();
            corrupt[word * 4..word * 4 + 4].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes());
            match decode_linked(&corrupt, 0) {
                Err(_) => {}
                Ok(back) => {
                    // Whatever survived must still be executable and
                    // in-bounds: run it to completion.
                    assert_eq!(back.n(), pristine.n());
                    let mut m: LinkedMachine<Nat> = LinkedMachine::new(&back);
                    let _ = m.run();
                }
            }
        }
    }

    #[test]
    fn decoded_schedule_revalidates_capacity() {
        // Two sends from node 0 in one round at capacity 1: encodable by
        // hand, must be rejected by the builder on decode.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes()); // n
        payload.extend_from_slice(&1u64.to_le_bytes()); // capacity
        payload.extend_from_slice(&1u64.to_le_bytes()); // steps
        payload.push(STEP_COMM);
        payload.extend_from_slice(&2u64.to_le_bytes());
        for dst in [1u32, 2u32] {
            payload.extend_from_slice(&0u32.to_le_bytes()); // src
            payload.extend_from_slice(&dst.to_le_bytes());
            payload.push(0); // overwrite
            payload.extend_from_slice(&Key::a(0, 0).to_raw().to_le_bytes());
            payload.extend_from_slice(&Key::a(0, 0).to_raw().to_le_bytes());
        }
        assert!(matches!(
            decode_schedule(&payload, 0),
            Err(BinSerError::Model(_))
        ));
    }
}
