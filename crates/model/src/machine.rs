//! The runtime: executes a [`Schedule`] against per-node value stores.

use std::collections::HashMap;
use std::time::Instant;

use lowband_faults::{mix64, FaultHook, NoopFaults, Tamper};
use lowband_trace::{NoopTracer, RoundEvent, Tracer};

use crate::recovery::{Checkpoint, RunWindow};
use crate::schedule::{LocalOp, Merge, Step};
use crate::{Key, ModelError, NodeId, Schedule, Semiring};

pub use crate::stats::ExecutionStats;

/// A network of `n` computers, each with a key–value store of semiring
/// elements.
///
/// The machine executes compiled [`Schedule`]s. It re-validates the
/// one-send/one-receive constraint on every round (defense in depth: the
/// [`crate::ScheduleBuilder`] already enforces it, but schedules can be
/// constructed by other means), so a successful [`Machine::run`] certifies
/// that the computation fits the low-bandwidth model.
#[derive(Clone, Debug)]
pub struct Machine<V: Semiring> {
    stores: Vec<HashMap<Key, V>>,
    /// Scratch stamps/counters for constraint validation.
    send_stamp: Vec<u32>,
    recv_stamp: Vec<u32>,
    send_count: Vec<u32>,
    recv_count: Vec<u32>,
    stamp: u32,
}

impl<V: Semiring> Machine<V> {
    /// Create a machine with `n` computers and empty stores.
    pub fn new(n: usize) -> Machine<V> {
        Machine {
            stores: vec![HashMap::new(); n],
            send_stamp: vec![0; n],
            recv_stamp: vec![0; n],
            send_count: vec![0; n],
            recv_count: vec![0; n],
            stamp: 0,
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.stores.len()
    }

    /// Place `value` under `key` at `node` (input loading).
    pub fn load(&mut self, node: NodeId, key: Key, value: V) {
        self.stores[node.index()].insert(key, value);
    }

    /// Read the value under `key` at `node`, if present.
    pub fn get(&self, node: NodeId, key: Key) -> Option<&V> {
        self.stores[node.index()].get(&key)
    }

    /// Read the value under `key` at `node`, or semiring zero if absent.
    pub fn get_or_zero(&self, node: NodeId, key: Key) -> V {
        self.get(node, key).cloned().unwrap_or_else(V::zero)
    }

    /// Number of values currently stored at `node`.
    pub fn store_len(&self, node: NodeId) -> usize {
        self.stores[node.index()].len()
    }

    /// Execute a schedule. On success returns the cost accounting; on
    /// failure the machine state is left as of the failing step — call
    /// [`Machine::reset`] (or [`Machine::restore`] with an earlier
    /// [`Checkpoint`]) to reuse the machine afterwards.
    pub fn run(&mut self, schedule: &Schedule) -> Result<ExecutionStats, ModelError> {
        self.run_traced(schedule, &mut NoopTracer)
    }

    /// [`Machine::run`] with an instrumentation sink: emits one
    /// [`RoundEvent`] per communication round (messages delivered, local
    /// ops since the previous round, wall time), a `run.local_ops` counter
    /// per compute step, and per-node send/receive loads at the end. With
    /// [`NoopTracer`] this compiles to exactly [`Machine::run`].
    pub fn run_traced<T: Tracer>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
    ) -> Result<ExecutionStats, ModelError> {
        let mut stats = ExecutionStats::default();
        self.run_guarded(
            schedule,
            tracer,
            &mut NoopFaults,
            RunWindow::full(),
            &mut stats,
        )?;
        Ok(stats)
    }

    /// The full-control entry point behind [`Machine::run_traced`]: executes
    /// the schedule steps of `window`, querying `faults` at every round
    /// boundary and message, accumulating into `stats` (pass the stats of
    /// the checkpoint being resumed; the round index handed to the fault
    /// hook is `stats.rounds`, so it stays global across windows).
    ///
    /// Returns `Ok(None)` when the schedule completed, or `Ok(Some(step))`
    /// when the window's round budget was exhausted — `step` is the resume
    /// cursor to checkpoint. On an injected crash the victim's store is
    /// wiped and the run aborts with [`ModelError::NodeCrashed`]; a
    /// lost/corrupted message fails the round's payload checksum and aborts
    /// with [`ModelError::Corruption`]. `stats` is valid on every exit path
    /// (errors included), so drivers can measure replayed work.
    ///
    /// All fault bookkeeping is guarded by `F::ENABLED` (a constant): with
    /// [`NoopFaults`] and a full window this compiles to exactly
    /// [`Machine::run_traced`].
    pub fn run_guarded<T: Tracer, F: FaultHook>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        if schedule.n() != self.n() {
            return Err(ModelError::SizeMismatch {
                expected: schedule.n(),
                actual: self.n(),
            });
        }
        let start = Instant::now();
        let result = self.run_window(schedule, tracer, faults, window, stats);
        stats.elapsed += start.elapsed();
        result
    }

    fn run_window<T: Tracer, F: FaultHook>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let cap = schedule.capacity() as u32;
        let mut inbox: Vec<(NodeId, Key, Merge, V)> = Vec::new();
        // Per-node load tallies and the ops-since-last-round count only
        // exist for real sinks; `T::ENABLED` is const, so the disabled
        // branches fold away entirely. The same applies to every fault
        // branch under `F::ENABLED`.
        let (mut node_sends, mut node_recvs) = if T::ENABLED {
            (vec![0u64; self.n()], vec![0u64; self.n()])
        } else {
            (Vec::new(), Vec::new())
        };
        let mut ops_since_round = 0u64;
        let mut window_rounds = 0usize;
        let steps = schedule.steps();
        let first = window.start_step.min(steps.len());
        for (offset, step) in steps[first..].iter().enumerate() {
            let step_idx = first + offset;
            match step {
                Step::Comm(round) => {
                    // The window budget binds on every run, fault hook or
                    // not: a windowed plain run stops at the boundary and
                    // returns its resume cursor just like a guarded one.
                    if window_rounds == window.max_rounds {
                        if T::ENABLED {
                            tracer.node_loads(&node_sends, &node_recvs);
                        }
                        return Ok(Some(step_idx));
                    }
                    window_rounds += 1;
                    if F::ENABLED {
                        if let Some(victim) = faults.crash(stats.rounds) {
                            let victim = NodeId(victim);
                            // Targets outside the network (a plan generated
                            // for a different n) are ignored, never a panic.
                            if victim.index() < self.n() {
                                if T::ENABLED {
                                    tracer.fault("fault.injected.crash", stats.rounds as u64);
                                }
                                self.stores[victim.index()].clear();
                                return Err(ModelError::NodeCrashed {
                                    node: victim,
                                    round: stats.rounds,
                                });
                            }
                        }
                    }
                    let round_start = if T::ENABLED {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    self.stamp += 1;
                    let stamp = self.stamp;
                    inbox.clear();
                    inbox.reserve(round.transfers.len());
                    // Commutative rolling checksums of the payloads as sent
                    // vs. as delivered: order-independent (wrapping sum of
                    // mixed digests), so every executor backend computes the
                    // same value for the same round.
                    let (mut sent_sum, mut recv_sum) = (0u64, 0u64);
                    // Read phase: gather all payloads and validate the
                    // bandwidth constraint before any store is mutated, so
                    // that delivery within a round is simultaneous.
                    for t in &round.transfers {
                        for node in [t.src, t.dst] {
                            if node.index() >= self.n() {
                                return Err(ModelError::NodeOutOfRange { node, n: self.n() });
                            }
                        }
                        let si = t.src.index();
                        if self.send_stamp[si] != stamp {
                            self.send_stamp[si] = stamp;
                            self.send_count[si] = 0;
                        }
                        self.send_count[si] += 1;
                        if self.send_count[si] > cap {
                            return Err(ModelError::SendConflict {
                                round: stats.rounds,
                                node: t.src,
                            });
                        }
                        let di = t.dst.index();
                        if self.recv_stamp[di] != stamp {
                            self.recv_stamp[di] = stamp;
                            self.recv_count[di] = 0;
                        }
                        self.recv_count[di] += 1;
                        if self.recv_count[di] > cap {
                            return Err(ModelError::ReceiveConflict {
                                round: stats.rounds,
                                node: t.dst,
                            });
                        }
                        let mut payload = self.stores[t.src.index()]
                            .get(&t.src_key)
                            .cloned()
                            .ok_or(ModelError::MissingValue {
                                node: t.src,
                                key: t.src_key,
                                step: step_idx,
                            })?;
                        if T::ENABLED {
                            node_sends[si] += 1;
                            node_recvs[di] += 1;
                        }
                        if F::ENABLED {
                            sent_sum = sent_sum.wrapping_add(mix64(payload.digest()));
                            match faults.tamper(stats.rounds, t.src.0) {
                                Tamper::None => {}
                                Tamper::Drop => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.drop", stats.rounds as u64);
                                    }
                                    continue;
                                }
                                Tamper::Corrupt => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.corrupt", stats.rounds as u64);
                                    }
                                    payload = payload.corrupted();
                                }
                            }
                            recv_sum = recv_sum.wrapping_add(mix64(payload.digest()));
                        }
                        inbox.push((t.dst, t.dst_key, t.merge, payload));
                    }
                    // Write phase: deliver.
                    for (dst, dst_key, merge, payload) in inbox.drain(..) {
                        let store = &mut self.stores[dst.index()];
                        match merge {
                            Merge::Overwrite => {
                                store.insert(dst_key, payload);
                            }
                            Merge::Add => {
                                let entry = store.entry(dst_key).or_insert_with(V::zero);
                                *entry = entry.add(&payload);
                            }
                        }
                    }
                    if F::ENABLED && sent_sum != recv_sum {
                        if T::ENABLED {
                            tracer.fault("fault.detected", stats.rounds as u64);
                        }
                        return Err(ModelError::Corruption {
                            round: stats.rounds,
                        });
                    }
                    stats.record_round(round.transfers.len());
                    if T::ENABLED {
                        tracer.round(RoundEvent {
                            index: (stats.rounds - 1) as u64,
                            messages: round.transfers.len() as u64,
                            local_ops: ops_since_round,
                            nanos: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        });
                        ops_since_round = 0;
                    }
                }
                Step::Compute(ops) => {
                    for op in ops {
                        self.apply_local(*op, step_idx)?;
                        stats.local_ops += 1;
                    }
                    tracer.counter("run.local_ops", ops.len() as u64);
                    if T::ENABLED {
                        ops_since_round += ops.len() as u64;
                    }
                }
            }
        }
        if T::ENABLED {
            tracer.node_loads(&node_sends, &node_recvs);
        }
        Ok(None)
    }

    /// Snapshot machine state into an executor-independent [`Checkpoint`]
    /// that resumes at `next_step` with the given accumulated `stats`.
    pub fn checkpoint(&self, next_step: usize, stats: ExecutionStats) -> Checkpoint<V> {
        Checkpoint::new(next_step, stats, self.stores.clone())
    }

    /// Restore every store from a [`Checkpoint`] (taken on *any* executor
    /// backend of the same network size). Fails with
    /// [`ModelError::SizeMismatch`] if the sizes differ.
    pub fn restore(&mut self, ckpt: &Checkpoint<V>) -> Result<(), ModelError> {
        if ckpt.n() != self.n() {
            return Err(ModelError::SizeMismatch {
                expected: ckpt.n(),
                actual: self.n(),
            });
        }
        for (store, saved) in self.stores.iter_mut().zip(ckpt.stores()) {
            store.clone_from(saved);
        }
        Ok(())
    }

    /// Clear every store, returning the machine to its freshly-constructed
    /// state so it can be reloaded and reused after a failed run.
    pub fn reset(&mut self) {
        for store in &mut self.stores {
            store.clear();
        }
    }

    /// Clone of the full key–value store at `node` (for equivalence tests
    /// and output extraction).
    pub fn snapshot(&self, node: NodeId) -> HashMap<Key, V> {
        self.stores[node.index()].clone()
    }

    fn apply_local(&mut self, op: LocalOp, step: usize) -> Result<(), ModelError> {
        // Schedules built by `ScheduleBuilder` can't name out-of-range
        // nodes, but deserialized or hand-built ones can — surface those as
        // a model error, never an index panic.
        let node = op.node();
        if node.index() >= self.n() {
            return Err(ModelError::NodeOutOfRange { node, n: self.n() });
        }
        match op {
            LocalOp::Mul {
                node,
                dst,
                lhs,
                rhs,
            } => {
                let store = &mut self.stores[node.index()];
                let a = store.get(&lhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: lhs,
                    step,
                })?;
                let b = store.get(&rhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: rhs,
                    step,
                })?;
                store.insert(dst, a.mul(&b));
            }
            LocalOp::AddAssign { node, dst, src } => {
                let store = &mut self.stores[node.index()];
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&s);
            }
            LocalOp::MulAdd {
                node,
                dst,
                lhs,
                rhs,
            } => {
                let store = &mut self.stores[node.index()];
                let a = store.get(&lhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: lhs,
                    step,
                })?;
                let b = store.get(&rhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: rhs,
                    step,
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&a.mul(&b));
            }
            LocalOp::SubAssign { node, dst, src } => {
                let store = &mut self.stores[node.index()];
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                let negated = s.try_neg().ok_or(ModelError::UnsupportedOp {
                    node,
                    step,
                    what: "additive inverses (a ring)",
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&negated);
            }
            LocalOp::BlockMulAdd {
                node,
                dim,
                a_ns,
                b_ns,
                c_ns,
            } => {
                let store = &mut self.stores[node.index()];
                block_mul_add(store, dim as usize, a_ns, b_ns, c_ns);
            }
            LocalOp::Copy { node, dst, src } => {
                let store = &mut self.stores[node.index()];
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                store.insert(dst, s);
            }
            LocalOp::Zero { node, dst } => {
                self.stores[node.index()].insert(dst, V::zero());
            }
            LocalOp::Free { node, key } => {
                self.stores[node.index()].remove(&key);
            }
        }
        Ok(())
    }
}

/// The node-local dense kernel behind [`LocalOp::BlockMulAdd`]: reads the
/// `A`/`B` blocks into dense buffers (missing entries are zero), runs the
/// cubic product in dense scratch, and accumulates into the `C` keys.
///
/// Every one of the `dim²` output keys is materialized (zero included):
/// key *existence* must depend only on the schedule, never on runtime
/// values, so downstream transfers compiled from structure alone can read
/// the outputs unconditionally.
pub(crate) fn block_mul_add<V: Semiring>(
    store: &mut HashMap<Key, V>,
    dim: usize,
    a_ns: u64,
    b_ns: u64,
    c_ns: u64,
) {
    let fetch = |store: &HashMap<Key, V>, ns: u64| -> Vec<V> {
        (0..dim * dim)
            .map(|idx| {
                store
                    .get(&Key::tmp(ns, idx as u64))
                    .cloned()
                    .unwrap_or_else(V::zero)
            })
            .collect()
    };
    let a = fetch(store, a_ns);
    let b = fetch(store, b_ns);
    let mut out = vec![V::zero(); dim * dim];
    for r in 0..dim {
        for q in 0..dim {
            let av = &a[r * dim + q];
            if av.is_zero() {
                continue;
            }
            for c in 0..dim {
                let bv = &b[q * dim + c];
                if bv.is_zero() {
                    continue;
                }
                let cell = &mut out[r * dim + c];
                *cell = cell.add(&av.mul(bv));
            }
        }
    }
    for (idx, v) in out.into_iter().enumerate() {
        let key = Key::tmp(c_ns, idx as u64);
        let entry = store.entry(key).or_insert_with(V::zero);
        *entry = entry.add(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::{ScheduleBuilder, Transfer};

    fn xfer(src: u32, sk: Key, dst: u32, dk: Key, merge: Merge) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: sk,
            dst: NodeId(dst),
            dst_key: dk,
            merge,
        }
    }

    #[test]
    fn overwrite_and_add_merges() {
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![
            xfer(0, Key::a(0, 0), 2, Key::tmp(0, 0), Merge::Overwrite),
            xfer(1, Key::a(1, 0), 0, Key::tmp(0, 1), Merge::Add),
        ])
        .unwrap();
        b.round(vec![xfer(1, Key::a(1, 0), 0, Key::tmp(0, 1), Merge::Add)])
            .unwrap();
        let s = b.build();

        let mut m: Machine<Nat> = Machine::new(3);
        m.load(NodeId(0), Key::a(0, 0), Nat(5));
        m.load(NodeId(1), Key::a(1, 0), Nat(3));
        let stats = m.run(&s).unwrap();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.max_round_messages, 2);
        assert_eq!(m.get(NodeId(2), Key::tmp(0, 0)), Some(&Nat(5)));
        // Added twice starting from absent (=zero).
        assert_eq!(m.get(NodeId(0), Key::tmp(0, 1)), Some(&Nat(6)));
        // Sender keeps its copy.
        assert_eq!(m.get(NodeId(1), Key::a(1, 0)), Some(&Nat(3)));
    }

    #[test]
    fn simultaneous_swap_within_a_round() {
        // Delivery is simultaneous: two nodes can exchange values in one
        // round without clobbering each other.
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![
            xfer(0, Key::tmp(0, 0), 1, Key::tmp(0, 0), Merge::Overwrite),
            xfer(1, Key::tmp(0, 0), 0, Key::tmp(0, 0), Merge::Overwrite),
        ])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(2);
        m.load(NodeId(0), Key::tmp(0, 0), Nat(1));
        m.load(NodeId(1), Key::tmp(0, 0), Nat(2));
        m.run(&s).unwrap();
        assert_eq!(m.get(NodeId(0), Key::tmp(0, 0)), Some(&Nat(2)));
        assert_eq!(m.get(NodeId(1), Key::tmp(0, 0)), Some(&Nat(1)));
    }

    #[test]
    fn local_ops_compute_products_and_sums() {
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![
            LocalOp::Mul {
                node: NodeId(0),
                dst: Key::prod(0, 0),
                lhs: Key::a(0, 0),
                rhs: Key::b(0, 0),
            },
            LocalOp::AddAssign {
                node: NodeId(0),
                dst: Key::x(0, 0),
                src: Key::prod(0, 0),
            },
            LocalOp::Copy {
                node: NodeId(0),
                dst: Key::tmp(1, 0),
                src: Key::x(0, 0),
            },
            LocalOp::Zero {
                node: NodeId(0),
                dst: Key::tmp(1, 1),
            },
            LocalOp::Free {
                node: NodeId(0),
                key: Key::prod(0, 0),
            },
        ])
        .unwrap();
        let s = b.build();
        assert_eq!(s.rounds(), 0, "local computation is free");

        let mut m: Machine<Nat> = Machine::new(1);
        m.load(NodeId(0), Key::a(0, 0), Nat(6));
        m.load(NodeId(0), Key::b(0, 0), Nat(7));
        let stats = m.run(&s).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.local_ops, 5);
        assert_eq!(m.get(NodeId(0), Key::x(0, 0)), Some(&Nat(42)));
        assert_eq!(m.get(NodeId(0), Key::tmp(1, 0)), Some(&Nat(42)));
        assert_eq!(m.get(NodeId(0), Key::tmp(1, 1)), Some(&Nat(0)));
        assert_eq!(m.get(NodeId(0), Key::prod(0, 0)), None);
    }

    #[test]
    fn mul_add_fuses_product_and_accumulation() {
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![
            LocalOp::MulAdd {
                node: NodeId(0),
                dst: Key::x(0, 0),
                lhs: Key::a(0, 0),
                rhs: Key::b(0, 0),
            },
            LocalOp::MulAdd {
                node: NodeId(0),
                dst: Key::x(0, 0),
                lhs: Key::a(0, 0),
                rhs: Key::b(0, 0),
            },
        ])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(1);
        m.load(NodeId(0), Key::a(0, 0), Nat(6));
        m.load(NodeId(0), Key::b(0, 0), Nat(7));
        m.run(&s).unwrap();
        assert_eq!(
            m.get(NodeId(0), Key::x(0, 0)),
            Some(&Nat(84)),
            "0 + 42 + 42"
        );
    }

    #[test]
    fn sub_assign_works_for_rings_only() {
        // Nat is a plain semiring: SubAssign must fail with UnsupportedOp.
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::SubAssign {
            node: NodeId(0),
            dst: Key::x(0, 0),
            src: Key::a(0, 0),
        }])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(1);
        m.load(NodeId(0), Key::a(0, 0), Nat(3));
        assert!(matches!(m.run(&s), Err(ModelError::UnsupportedOp { .. })));
    }

    #[test]
    fn block_mul_add_matches_scalar_kernel() {
        // 2×2 block: A = [1 2; 3 4], B = [5 6; 7 8], C starts at [1 0; 0 0].
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::BlockMulAdd {
            node: NodeId(0),
            dim: 2,
            a_ns: 10,
            b_ns: 11,
            c_ns: 12,
        }])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(1);
        for (idx, v) in [1u64, 2, 3, 4].into_iter().enumerate() {
            m.load(NodeId(0), Key::tmp(10, idx as u64), Nat(v));
        }
        for (idx, v) in [5u64, 6, 7, 8].into_iter().enumerate() {
            m.load(NodeId(0), Key::tmp(11, idx as u64), Nat(v));
        }
        m.load(NodeId(0), Key::tmp(12, 0), Nat(1));
        m.run(&s).unwrap();
        // [1 2; 3 4]·[5 6; 7 8] = [19 22; 43 50]; plus the preloaded 1.
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 0)), Some(&Nat(20)));
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 1)), Some(&Nat(22)));
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 2)), Some(&Nat(43)));
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 3)), Some(&Nat(50)));
    }

    #[test]
    fn block_mul_add_treats_missing_as_zero() {
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::BlockMulAdd {
            node: NodeId(0),
            dim: 2,
            a_ns: 10,
            b_ns: 11,
            c_ns: 12,
        }])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(1);
        // Only A[0,0] and B[0,1] present: C[0,1] = 3·7, everything else 0
        // (and absent entries never materialize).
        m.load(NodeId(0), Key::tmp(10, 0), Nat(3));
        m.load(NodeId(0), Key::tmp(11, 1), Nat(7));
        m.run(&s).unwrap();
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 1)), Some(&Nat(21)));
        // Every output key materializes (structurally), zeros included.
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 0)), Some(&Nat(0)));
        assert_eq!(m.get(NodeId(0), Key::tmp(12, 3)), Some(&Nat(0)));
    }

    #[test]
    fn missing_source_value_is_an_error() {
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![xfer(
            0,
            Key::a(9, 9),
            1,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(2);
        let err = m.run(&s).unwrap_err();
        assert!(matches!(err, ModelError::MissingValue { .. }));
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let s = ScheduleBuilder::new(3).build();
        let mut m: Machine<Nat> = Machine::new(2);
        assert!(matches!(
            m.run(&s),
            Err(ModelError::SizeMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn machine_revalidates_constraints() {
        // Hand-construct an invalid schedule bypassing the builder by
        // chaining two valid single-round schedules... not possible; instead
        // check that a valid schedule re-run twice still validates (stamps
        // reset correctly across runs).
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![xfer(
            0,
            Key::a(0, 0),
            1,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(2);
        m.load(NodeId(0), Key::a(0, 0), Nat(1));
        m.run(&s).unwrap();
        m.run(&s).unwrap();
        assert_eq!(m.get(NodeId(1), Key::tmp(0, 0)), Some(&Nat(1)));
    }

    #[test]
    fn machine_honors_schedule_capacity() {
        let mut b = crate::ScheduleBuilder::with_capacity(3, 2);
        b.round(vec![
            xfer(0, Key::a(0, 0), 1, Key::tmp(0, 0), Merge::Overwrite),
            xfer(0, Key::a(0, 1), 2, Key::tmp(0, 1), Merge::Overwrite),
        ])
        .unwrap();
        let s = b.build();
        let mut m: Machine<Nat> = Machine::new(3);
        m.load(NodeId(0), Key::a(0, 0), Nat(1));
        m.load(NodeId(0), Key::a(0, 1), Nat(2));
        let stats = m.run(&s).unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(m.get(NodeId(2), Key::tmp(0, 1)), Some(&Nat(2)));
    }

    #[test]
    fn get_or_zero_defaults() {
        let m: Machine<Nat> = Machine::new(1);
        assert_eq!(m.get_or_zero(NodeId(0), Key::x(0, 0)), Nat(0));
    }
}
