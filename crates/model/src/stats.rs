//! Schedule introspection: load profiles and utilization.
//!
//! The paper's cost measure is rounds, but *why* a schedule costs what it
//! costs is a load question: which computers are send- or receive-bound,
//! how full the rounds are, where the broadcast trees sit. These statistics
//! drive the bench harness's diagnostics and the `schedule_inspector`
//! example.

use std::time::Duration;

use crate::schedule::Step;
use crate::Schedule;

/// Cost accounting of one execution.
///
/// Equality ignores [`ExecutionStats::elapsed`]: the model-level costs
/// (rounds, messages, busiest round, local ops) are deterministic functions
/// of the schedule and must agree bit-for-bit across executors, while
/// wall-clock time is a property of the machine running the simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecutionStats {
    /// Communication rounds executed (the paper's cost measure).
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Largest number of messages in any single round.
    pub busiest_round: usize,
    /// Local ops executed (free in the model; reported for interest).
    pub local_ops: usize,
    /// Wall-clock time of the execution (not part of equality).
    pub elapsed: Duration,
}

impl ExecutionStats {
    /// Total simulated events: messages delivered plus local ops executed.
    pub fn events(&self) -> usize {
        self.messages + self.local_ops
    }

    /// Executor throughput in events per wall-clock second (0.0 when the
    /// execution was too fast to time).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events() as f64 / secs
        } else {
            0.0
        }
    }
}

impl PartialEq for ExecutionStats {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.busiest_round == other.busiest_round
            && self.local_ops == other.local_ops
    }
}

impl Eq for ExecutionStats {}

/// Aggregate statistics of one compiled schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Communication rounds.
    pub rounds: usize,
    /// Total messages.
    pub messages: usize,
    /// Messages in the fullest round.
    pub max_round_messages: usize,
    /// Mean messages per round.
    pub mean_round_messages: f64,
    /// `messages / (rounds · n)` — the fraction of send slots used.
    pub utilization: f64,
    /// Largest number of sends by any single computer.
    pub max_node_sends: usize,
    /// Largest number of receives by any single computer.
    pub max_node_recvs: usize,
    /// Free local operations.
    pub compute_ops: usize,
}

impl Schedule {
    /// Messages per round, in round order.
    pub fn round_histogram(&self) -> Vec<usize> {
        self.steps()
            .iter()
            .filter_map(|s| match s {
                Step::Comm(r) => Some(r.transfers.len()),
                Step::Compute(_) => None,
            })
            .collect()
    }

    /// Per-node total `(sends, receives)` across the whole schedule.
    pub fn node_load(&self) -> (Vec<usize>, Vec<usize>) {
        let mut sends = vec![0usize; self.n()];
        let mut recvs = vec![0usize; self.n()];
        for step in self.steps() {
            if let Step::Comm(round) = step {
                for t in &round.transfers {
                    sends[t.src.index()] += 1;
                    recvs[t.dst.index()] += 1;
                }
            }
        }
        (sends, recvs)
    }

    /// Compute the aggregate statistics.
    pub fn stats(&self) -> ScheduleStats {
        let hist = self.round_histogram();
        let (sends, recvs) = self.node_load();
        let compute_ops = self
            .steps()
            .iter()
            .map(|s| match s {
                Step::Compute(ops) => ops.len(),
                Step::Comm(_) => 0,
            })
            .sum();
        let rounds = self.rounds();
        let messages = self.messages();
        ScheduleStats {
            rounds,
            messages,
            max_round_messages: hist.iter().copied().max().unwrap_or(0),
            mean_round_messages: if rounds == 0 {
                0.0
            } else {
                messages as f64 / rounds as f64
            },
            utilization: if rounds == 0 || self.n() == 0 {
                0.0
            } else {
                messages as f64 / (rounds * self.n()) as f64
            },
            max_node_sends: sends.into_iter().max().unwrap_or(0),
            max_node_recvs: recvs.into_iter().max().unwrap_or(0),
            compute_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Key, LocalOp, Merge, NodeId, ScheduleBuilder, Transfer};

    fn xfer(src: u32, dst: u32) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: Key::tmp(0, 0),
            dst: NodeId(dst),
            dst_key: Key::tmp(0, 1),
            merge: Merge::Overwrite,
        }
    }

    #[test]
    fn stats_of_small_schedule() {
        let mut b = ScheduleBuilder::new(4);
        b.round(vec![xfer(0, 1), xfer(2, 3)]).unwrap();
        b.compute(vec![LocalOp::Zero {
            node: NodeId(1),
            dst: Key::x(0, 0),
        }])
        .unwrap();
        b.round(vec![xfer(0, 2)]).unwrap();
        let s = b.build();
        let stats = s.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.max_round_messages, 2);
        assert!((stats.mean_round_messages - 1.5).abs() < 1e-12);
        assert!((stats.utilization - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.max_node_sends, 2, "node 0 sends twice");
        assert_eq!(stats.max_node_recvs, 1);
        assert_eq!(stats.compute_ops, 1);
        assert_eq!(s.round_histogram(), vec![2, 1]);
    }

    #[test]
    fn empty_schedule_stats() {
        let s = ScheduleBuilder::new(3).build();
        let stats = s.stats();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.utilization, 0.0);
        assert_eq!(stats.mean_round_messages, 0.0);
    }

    #[test]
    fn node_load_shape() {
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![xfer(0, 1)]).unwrap();
        b.round(vec![xfer(0, 2)]).unwrap();
        let s = b.build();
        let (sends, recvs) = s.node_load();
        assert_eq!(sends, vec![2, 0, 0]);
        assert_eq!(recvs, vec![0, 1, 1]);
    }
}
