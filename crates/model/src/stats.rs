//! Schedule introspection: load profiles and utilization.
//!
//! The paper's cost measure is rounds, but *why* a schedule costs what it
//! costs is a load question: which computers are send- or receive-bound,
//! how full the rounds are, where the broadcast trees sit. These statistics
//! drive the bench harness's diagnostics and the `schedule_inspector`
//! example.

use std::time::Duration;

use crate::schedule::Step;
use crate::Schedule;

/// Cost accounting of one execution.
///
/// Equality ignores [`ExecutionStats::elapsed`]: the model-level costs
/// (rounds, messages, fullest round, local ops) are deterministic functions
/// of the schedule and must agree bit-for-bit across executors, while
/// wall-clock time is a property of the machine running the simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecutionStats {
    /// Communication rounds executed (the paper's cost measure).
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Messages in the fullest round (same measure as
    /// [`ScheduleStats::max_round_messages`]).
    pub max_round_messages: usize,
    /// Local ops executed (free in the model; reported for interest).
    pub local_ops: usize,
    /// Faults injected by the fault plan driving this run (0 for plain
    /// runs; set by `run_resilient`-style drivers, which own the plan).
    pub faults_injected: usize,
    /// Injected faults the per-round checksums / crash reporting caught.
    pub faults_detected: usize,
    /// Checkpoint restores performed to complete the run.
    pub recoveries: usize,
    /// Injected message drops (the per-kind breakdown of
    /// [`ExecutionStats::faults_injected`]; filled by the same drivers).
    pub fault_drops: usize,
    /// Injected value corruptions.
    pub fault_corruptions: usize,
    /// Injected node crashes.
    pub fault_crashes: usize,
    /// Wall-clock time of the execution (not part of equality).
    pub elapsed: Duration,
}

impl ExecutionStats {
    /// Account one communication round of `messages` deliveries. Every
    /// executor (and [`Schedule::stats`]) funnels round accounting through
    /// here so the three round-derived fields can never drift apart.
    #[inline]
    pub fn record_round(&mut self, messages: usize) {
        self.rounds += 1;
        self.messages += messages;
        self.max_round_messages = self.max_round_messages.max(messages);
    }

    /// Total simulated events: messages delivered plus local ops executed.
    pub fn events(&self) -> usize {
        self.messages + self.local_ops
    }

    /// Executor throughput in events per wall-clock second; `None` when
    /// the execution was too fast for the clock to resolve (a 0.0 or
    /// infinite rate would be noise, not data).
    pub fn events_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.events() as f64 / secs)
    }
}

impl PartialEq for ExecutionStats {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.max_round_messages == other.max_round_messages
            && self.local_ops == other.local_ops
            && self.faults_injected == other.faults_injected
            && self.faults_detected == other.faults_detected
            && self.recoveries == other.recoveries
            && self.fault_drops == other.fault_drops
            && self.fault_corruptions == other.fault_corruptions
            && self.fault_crashes == other.fault_crashes
    }
}

impl Eq for ExecutionStats {}

/// Aggregate statistics of one compiled schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Communication rounds.
    pub rounds: usize,
    /// Total messages.
    pub messages: usize,
    /// Messages in the fullest round.
    pub max_round_messages: usize,
    /// Mean messages per round.
    pub mean_round_messages: f64,
    /// `messages / (rounds · n)` — the fraction of send slots used.
    pub utilization: f64,
    /// Largest number of sends by any single computer.
    pub max_node_sends: usize,
    /// Largest number of receives by any single computer.
    pub max_node_recvs: usize,
    /// Free local operations.
    pub compute_ops: usize,
}

impl Schedule {
    /// Messages per round, in round order.
    pub fn round_histogram(&self) -> Vec<usize> {
        self.steps()
            .iter()
            .filter_map(|s| match s {
                Step::Comm(r) => Some(r.transfers.len()),
                Step::Compute(_) => None,
            })
            .collect()
    }

    /// Per-node total `(sends, receives)` across the whole schedule.
    pub fn node_load(&self) -> (Vec<usize>, Vec<usize>) {
        let mut sends = vec![0usize; self.n()];
        let mut recvs = vec![0usize; self.n()];
        for step in self.steps() {
            if let Step::Comm(round) = step {
                for t in &round.transfers {
                    sends[t.src.index()] += 1;
                    recvs[t.dst.index()] += 1;
                }
            }
        }
        (sends, recvs)
    }

    /// Compute the aggregate statistics.
    pub fn stats(&self) -> ScheduleStats {
        let hist = self.round_histogram();
        let (sends, recvs) = self.node_load();
        let compute_ops = self
            .steps()
            .iter()
            .map(|s| match s {
                Step::Compute(ops) => ops.len(),
                Step::Comm(_) => 0,
            })
            .sum();
        // Fold the histogram through the same accumulator the executors
        // use, so schedule-level and execution-level round accounting are
        // one code path.
        let mut acc = ExecutionStats::default();
        for &m in &hist {
            acc.record_round(m);
        }
        debug_assert_eq!(acc.rounds, self.rounds());
        debug_assert_eq!(acc.messages, self.messages());
        let rounds = acc.rounds;
        let messages = acc.messages;
        ScheduleStats {
            rounds,
            messages,
            max_round_messages: acc.max_round_messages,
            mean_round_messages: if rounds == 0 {
                0.0
            } else {
                messages as f64 / rounds as f64
            },
            utilization: if rounds == 0 || self.n() == 0 {
                0.0
            } else {
                messages as f64 / (rounds * self.n()) as f64
            },
            max_node_sends: sends.into_iter().max().unwrap_or(0),
            max_node_recvs: recvs.into_iter().max().unwrap_or(0),
            compute_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Key, LocalOp, Merge, NodeId, ScheduleBuilder, Transfer};

    fn xfer(src: u32, dst: u32) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: Key::tmp(0, 0),
            dst: NodeId(dst),
            dst_key: Key::tmp(0, 1),
            merge: Merge::Overwrite,
        }
    }

    #[test]
    fn stats_of_small_schedule() {
        let mut b = ScheduleBuilder::new(4);
        b.round(vec![xfer(0, 1), xfer(2, 3)]).unwrap();
        b.compute(vec![LocalOp::Zero {
            node: NodeId(1),
            dst: Key::x(0, 0),
        }])
        .unwrap();
        b.round(vec![xfer(0, 2)]).unwrap();
        let s = b.build();
        let stats = s.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.max_round_messages, 2);
        assert!((stats.mean_round_messages - 1.5).abs() < 1e-12);
        assert!((stats.utilization - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.max_node_sends, 2, "node 0 sends twice");
        assert_eq!(stats.max_node_recvs, 1);
        assert_eq!(stats.compute_ops, 1);
        assert_eq!(s.round_histogram(), vec![2, 1]);
    }

    #[test]
    fn empty_schedule_stats() {
        let s = ScheduleBuilder::new(3).build();
        let stats = s.stats();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.utilization, 0.0);
        assert_eq!(stats.mean_round_messages, 0.0);
    }

    #[test]
    fn node_load_shape() {
        let mut b = ScheduleBuilder::new(3);
        b.round(vec![xfer(0, 1)]).unwrap();
        b.round(vec![xfer(0, 2)]).unwrap();
        let s = b.build();
        let (sends, recvs) = s.node_load();
        assert_eq!(sends, vec![2, 0, 0]);
        assert_eq!(recvs, vec![0, 1, 1]);
    }

    /// A transfer between distinct `(node, key)` slots, for capacity tests
    /// that need several messages touching one node in one round.
    fn xfer_keyed(src: u32, sk: u64, dst: u32, dk: u64) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: Key::tmp(0, sk),
            dst: NodeId(dst),
            dst_key: Key::tmp(0, dk),
            merge: Merge::Overwrite,
        }
    }

    #[test]
    fn stats_at_capacity_two() {
        // Node-capacitated clique (§1.5 generalization): node 0 sends two
        // messages in round 1, node 3 receives two in round 2. The load
        // profile and fullest-round measure must count messages, not
        // distinct nodes.
        let mut b = ScheduleBuilder::with_capacity(4, 2);
        b.round(vec![xfer_keyed(0, 0, 1, 10), xfer_keyed(0, 1, 2, 11)])
            .unwrap();
        b.round(vec![
            xfer_keyed(1, 2, 3, 12),
            xfer_keyed(2, 3, 3, 13),
            xfer_keyed(0, 4, 1, 14),
        ])
        .unwrap();
        let s = b.build();
        assert_eq!(s.round_histogram(), vec![2, 3]);
        let (sends, recvs) = s.node_load();
        assert_eq!(sends, vec![3, 1, 1, 0]);
        assert_eq!(recvs, vec![0, 2, 1, 2]);
        let stats = s.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages, 5);
        assert_eq!(stats.max_round_messages, 3);
        assert_eq!(stats.max_node_sends, 3);
        assert_eq!(stats.max_node_recvs, 2);
        // Utilization denominator is rounds · n, independent of capacity.
        assert!((stats.utilization - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_survive_compression_with_hazard_round_at_capacity_two() {
        // Round 2 is a two-node swap: each side's source key is the other
        // side's destination, so the compressor must place the round
        // atomically (read-barrier semantics) rather than pipelining it.
        let swap = |a: u32, b: u32| Transfer {
            src: NodeId(a),
            src_key: Key::tmp(0, a as u64),
            dst: NodeId(b),
            dst_key: Key::tmp(0, b as u64),
            merge: Merge::Overwrite,
        };
        let mut b = ScheduleBuilder::with_capacity(4, 2);
        b.round(vec![xfer_keyed(2, 20, 3, 21), xfer_keyed(2, 22, 3, 23)])
            .unwrap();
        b.round(vec![swap(0, 1), swap(1, 0)]).unwrap();
        b.round(vec![xfer_keyed(3, 23, 2, 24)]).unwrap();
        let s = b.build();
        let c = crate::compress(&s);

        // The hazard round survives as a round; total load is preserved.
        let stats = s.stats();
        let cstats = c.stats();
        assert_eq!(cstats.messages, stats.messages);
        assert!(cstats.rounds <= stats.rounds);
        assert!(cstats.rounds >= 1);
        assert!(cstats.max_round_messages >= stats.max_round_messages);
        assert!(cstats.max_round_messages <= 2 * c.capacity());
        // Per-node totals are invariant under rescheduling.
        assert_eq!(c.node_load(), s.node_load());
        assert_eq!(
            c.round_histogram().iter().sum::<usize>(),
            s.round_histogram().iter().sum::<usize>()
        );
        // Compression respects the declared capacity in every round.
        assert_eq!(c.capacity(), 2);
        let (sends, recvs) = c.node_load();
        assert!(sends.iter().all(|&x| x <= 2 * cstats.rounds));
        assert!(recvs.iter().all(|&x| x <= 2 * cstats.rounds));
    }

    #[test]
    fn execution_record_round_matches_schedule_stats() {
        // The shared accumulator: folding the round histogram must
        // reproduce the ScheduleStats round fields exactly.
        let mut b = ScheduleBuilder::with_capacity(3, 3);
        b.round(vec![xfer_keyed(0, 0, 1, 1), xfer_keyed(0, 2, 2, 3)])
            .unwrap();
        b.round(vec![xfer_keyed(1, 1, 2, 4)]).unwrap();
        let s = b.build();
        let mut acc = crate::ExecutionStats::default();
        for m in s.round_histogram() {
            acc.record_round(m);
        }
        let stats = s.stats();
        assert_eq!(acc.rounds, stats.rounds);
        assert_eq!(acc.messages, stats.messages);
        assert_eq!(acc.max_round_messages, stats.max_round_messages);
    }

    #[test]
    fn events_per_sec_is_none_below_clock_resolution() {
        let mut stats = crate::ExecutionStats {
            messages: 100,
            local_ops: 50,
            ..Default::default()
        };
        assert_eq!(stats.events(), 150);
        assert_eq!(stats.events_per_sec(), None, "zero elapsed → no rate");
        stats.elapsed = std::time::Duration::from_millis(10);
        let rate = stats.events_per_sec().expect("timed run has a rate");
        assert!((rate - 15_000.0).abs() < 1e-6);
    }
}
