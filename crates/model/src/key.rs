//! Keys naming the values stored in a node's local store.
//!
//! Every datum an algorithm routes through the network — an input element
//! `A_ij` or `B_jk`, an output element `X_ik`, a partial product, or a
//! temporary used by a routing primitive — is addressed by a [`Key`]. Keys
//! are compact (`u128`) so per-node stores stay cache-friendly, and carry a
//! tag so that traces are human-readable.
//!
//! Matrix indices follow the paper's tripartite convention: `A` is indexed
//! `I × J`, `B` is indexed `J × K`, and `X` is indexed `I × K` (§2.2).

/// The kind of datum a [`Key`] names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum KeyKind {
    /// Input element `A_ij`.
    A,
    /// Input element `B_jk`.
    B,
    /// Output element `X_ik` (accumulator).
    X,
    /// A partial product destined for some `X_ik`.
    Prod,
    /// Scratch value owned by a routing primitive; `ns` disambiguates
    /// concurrent primitives.
    Tmp,
}

/// Compact key for a value in a node-local store.
///
/// Layout: 8-bit tag, two 60-bit index fields. Indices must be `< 2^60`,
/// which comfortably covers any instance this simulator can hold in memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(u128);

const FIELD_BITS: u32 = 60;
const FIELD_MASK: u128 = (1u128 << FIELD_BITS) - 1;

impl Key {
    #[inline]
    fn pack(tag: u8, a: u64, b: u64) -> Key {
        debug_assert!(u128::from(a) <= FIELD_MASK && u128::from(b) <= FIELD_MASK);
        Key((u128::from(tag) << (2 * FIELD_BITS)) | (u128::from(a) << FIELD_BITS) | u128::from(b))
    }

    /// Key of the input element `A_ij`.
    #[inline]
    pub fn a(i: u64, j: u64) -> Key {
        Key::pack(0, i, j)
    }

    /// Key of the input element `B_jk`.
    #[inline]
    pub fn b(j: u64, k: u64) -> Key {
        Key::pack(1, j, k)
    }

    /// Key of the output accumulator `X_ik`.
    #[inline]
    pub fn x(i: u64, k: u64) -> Key {
        Key::pack(2, i, k)
    }

    /// Key of a partial product; `slot` is chosen by the algorithm so that
    /// concurrent products on the same node do not collide.
    #[inline]
    pub fn prod(slot: u64, sub: u64) -> Key {
        Key::pack(3, slot, sub)
    }

    /// Key of a temporary in namespace `ns` (one namespace per primitive
    /// invocation).
    #[inline]
    pub fn tmp(ns: u64, id: u64) -> Key {
        Key::pack(4, ns, id)
    }

    /// The raw 128-bit representation (for serialization).
    #[inline]
    pub fn to_raw(self) -> u128 {
        self.0
    }

    /// Rebuild a key from its raw representation (inverse of
    /// [`Key::to_raw`]).
    #[inline]
    pub fn from_raw(raw: u128) -> Key {
        Key(raw)
    }

    /// The tag of this key.
    #[inline]
    pub fn kind(self) -> KeyKind {
        match (self.0 >> (2 * FIELD_BITS)) as u8 {
            0 => KeyKind::A,
            1 => KeyKind::B,
            2 => KeyKind::X,
            3 => KeyKind::Prod,
            _ => KeyKind::Tmp,
        }
    }

    /// First index field (`i` for `A`/`X`, `j` for `B`, `slot`/`ns` for
    /// scratch keys).
    #[inline]
    pub fn fst(self) -> u64 {
        ((self.0 >> FIELD_BITS) & FIELD_MASK) as u64
    }

    /// Second index field.
    #[inline]
    pub fn snd(self) -> u64 {
        (self.0 & FIELD_MASK) as u64
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind() {
            KeyKind::A => write!(f, "A({},{})", self.fst(), self.snd()),
            KeyKind::B => write!(f, "B({},{})", self.fst(), self.snd()),
            KeyKind::X => write!(f, "X({},{})", self.fst(), self.snd()),
            KeyKind::Prod => write!(f, "P({},{})", self.fst(), self.snd()),
            KeyKind::Tmp => write!(f, "T({},{})", self.fst(), self.snd()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let k = Key::a(123, 456);
        assert_eq!(k.kind(), KeyKind::A);
        assert_eq!(k.fst(), 123);
        assert_eq!(k.snd(), 456);

        let k = Key::b(0, u64::MAX >> 4);
        assert_eq!(k.kind(), KeyKind::B);
        assert_eq!(k.snd(), u64::MAX >> 4);

        let k = Key::x(7, 9);
        assert_eq!(k.kind(), KeyKind::X);

        let k = Key::prod(42, 1);
        assert_eq!(k.kind(), KeyKind::Prod);
        assert_eq!(k.fst(), 42);

        let k = Key::tmp(3, 4);
        assert_eq!(k.kind(), KeyKind::Tmp);
    }

    #[test]
    fn distinct_tags_never_collide() {
        assert_ne!(Key::a(1, 2), Key::b(1, 2));
        assert_ne!(Key::a(1, 2), Key::x(1, 2));
        assert_ne!(Key::prod(1, 2), Key::tmp(1, 2));
    }

    #[test]
    fn debug_format_is_readable() {
        assert_eq!(format!("{:?}", Key::a(1, 2)), "A(1,2)");
        assert_eq!(format!("{:?}", Key::x(3, 4)), "X(3,4)");
    }

    #[test]
    fn ordering_groups_by_kind_then_indices() {
        let mut keys = vec![Key::x(0, 0), Key::a(1, 0), Key::a(0, 5), Key::b(0, 0)];
        keys.sort();
        assert_eq!(
            keys,
            vec![Key::a(0, 5), Key::a(1, 0), Key::b(0, 0), Key::x(0, 0)]
        );
    }
}
