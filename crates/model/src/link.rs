//! Schedule linking: key interning + flat slot stores for hash-free
//! execution.
//!
//! The reference executors ([`crate::Machine`], [`crate::ParallelMachine`])
//! address every value through a per-node `HashMap<Key, V>`, so every
//! transfer and local op pays several hash probes on 16-byte keys. But in
//! the supported model the *entire* set of keys a schedule will ever touch
//! is known before any value exists — schedules are compiled from structure
//! alone. [`link`] exploits that: it walks a [`Schedule`] once, interns each
//! node's distinct keys into dense slot ids (`u32`), and rewrites every
//! transfer and local op into slot-addressed form. The resulting
//! [`LinkedSchedule`] executes on [`LinkedMachine`], whose per-node store is
//! a flat `Vec<Option<V>>` indexed by slot — **zero hashing per event**.
//!
//! Linking also *validates* once what the reference executors re-check every
//! round (node ranges and the ≤ `capacity` send/receive constraint), so a
//! `LinkedSchedule` is a certificate that the program fits the model, and
//! the runtime loop carries no per-round validation at all.
//!
//! Within each round the linked transfers are stable-sorted by destination
//! node. This groups deliveries by destination shard for the parallel
//! executor (each worker's deliveries form one contiguous slice) while
//! preserving the relative order of deliveries to the *same* destination —
//! which, combined with the same read-all-then-write-all round semantics as
//! the reference executor, makes the final stores bit-identical between the
//! hash-map and slot-store backends (asserted by tests and by the
//! cross-executor equivalence suite).

use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

use lowband_faults::{mix64, FaultHook, NoopFaults, Tamper};
use lowband_trace::{NoopTracer, RoundEvent, Tracer};

use crate::parallel::shard_bounds;
use crate::recovery::{Checkpoint, RunWindow};
use crate::schedule::{LocalOp, Merge, Round, Step};
use crate::{ExecutionStats, Key, ModelError, NodeId, PackedSemiring, Schedule, Semiring};

/// One message in slot-addressed form:
/// `dst.slots[dst_slot] ← merge(dst.slots[dst_slot], src.slots[src_slot])`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkedTransfer {
    /// Sending node.
    pub src: u32,
    /// Slot read at the sender.
    pub src_slot: u32,
    /// Receiving node.
    pub dst: u32,
    /// Slot written at the receiver.
    pub dst_slot: u32,
    /// Combination rule at the receiver.
    pub merge: Merge,
}

/// A [`LocalOp`] rewritten onto slot ids. `BlockMulAdd` references a
/// side-table entry holding the pre-interned slot vectors of its three
/// blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkedOp {
    /// `dst ← lhs · rhs`.
    Mul {
        /// Node performing the op.
        node: u32,
        /// Slot written.
        dst: u32,
        /// Left factor slot.
        lhs: u32,
        /// Right factor slot.
        rhs: u32,
    },
    /// `dst ← dst + src`.
    AddAssign {
        /// Node performing the op.
        node: u32,
        /// Accumulator slot.
        dst: u32,
        /// Added slot.
        src: u32,
    },
    /// `dst ← dst + lhs · rhs`.
    MulAdd {
        /// Node performing the op.
        node: u32,
        /// Accumulator slot.
        dst: u32,
        /// Left factor slot.
        lhs: u32,
        /// Right factor slot.
        rhs: u32,
    },
    /// `dst ← dst − src` (rings only).
    SubAssign {
        /// Node performing the op.
        node: u32,
        /// Accumulator slot.
        dst: u32,
        /// Subtracted slot.
        src: u32,
    },
    /// Dense block multiply-accumulate over pre-interned slot vectors.
    BlockMulAdd {
        /// Node performing the op.
        node: u32,
        /// Index into [`LinkedSchedule`]'s block side-table.
        block: u32,
    },
    /// `dst ← src`.
    Copy {
        /// Node performing the op.
        node: u32,
        /// Slot written.
        dst: u32,
        /// Slot read.
        src: u32,
    },
    /// `dst ← 0`.
    Zero {
        /// Node performing the op.
        node: u32,
        /// Slot written.
        dst: u32,
    },
    /// Empty the slot.
    Free {
        /// Node performing the op.
        node: u32,
        /// Slot emptied.
        slot: u32,
    },
}

impl LinkedOp {
    /// The node this op runs on.
    pub fn node(&self) -> u32 {
        match *self {
            LinkedOp::Mul { node, .. }
            | LinkedOp::AddAssign { node, .. }
            | LinkedOp::MulAdd { node, .. }
            | LinkedOp::SubAssign { node, .. }
            | LinkedOp::BlockMulAdd { node, .. }
            | LinkedOp::Copy { node, .. }
            | LinkedOp::Zero { node, .. }
            | LinkedOp::Free { node, .. } => node,
        }
    }
}

/// Pre-interned slot vectors of one `BlockMulAdd`'s `A`/`B`/`C` blocks, in
/// row-major `r·dim + c` order.
#[derive(Clone, Debug)]
pub(crate) struct BlockSlots {
    pub(crate) dim: u32,
    pub(crate) a: Vec<u32>,
    pub(crate) b: Vec<u32>,
    pub(crate) c: Vec<u32>,
}

/// One step of a linked schedule; ranges index the flat transfer/op arrays.
/// `step` is the step index in the *source* schedule, so runtime errors
/// point at the same step as the reference executor's.
#[derive(Clone, Debug)]
pub(crate) enum LinkedStep {
    Comm {
        transfers: Range<usize>,
        step: usize,
    },
    Compute {
        ops: Range<usize>,
        step: usize,
    },
}

/// One step of a linked schedule in borrowed, slot-addressed form — the
/// public view behind [`LinkedSchedule::step_views`]. `step` is the index
/// of the corresponding step in the *source* schedule (linking produces
/// exactly one linked step per source step).
#[derive(Clone, Copy, Debug)]
pub enum LinkedStepView<'a> {
    /// A communication round.
    Comm {
        /// The round's transfers, stable-sorted by destination node.
        transfers: &'a [LinkedTransfer],
        /// Source-schedule step index.
        step: usize,
    },
    /// A block of local ops.
    Compute {
        /// The block's ops, stable-sorted by node.
        ops: &'a [LinkedOp],
        /// Source-schedule step index.
        step: usize,
    },
}

/// A [`Schedule`] after linking: keys interned to dense per-node slots,
/// events in flat slot-addressed arrays, model constraints validated.
#[derive(Clone, Debug)]
pub struct LinkedSchedule {
    pub(crate) n: usize,
    pub(crate) capacity: usize,
    pub(crate) rounds: usize,
    pub(crate) messages: usize,
    /// Per node: the interned keys; a key's slot id is its index here.
    pub(crate) node_keys: Vec<Vec<Key>>,
    /// Per node: key → slot. Used at link/load/extract time only — never on
    /// the execution hot path.
    pub(crate) node_slots: Vec<HashMap<Key, u32>>,
    pub(crate) steps: Vec<LinkedStep>,
    pub(crate) transfers: Vec<LinkedTransfer>,
    pub(crate) ops: Vec<LinkedOp>,
    pub(crate) blocks: Vec<BlockSlots>,
}

fn intern(keys: &mut Vec<Key>, slots: &mut HashMap<Key, u32>, key: Key) -> u32 {
    *slots.entry(key).or_insert_with(|| {
        let slot = keys.len() as u32;
        keys.push(key);
        slot
    })
}

/// The pre-interned slot vectors of one `BlockMulAdd` side-table entry:
/// `(dim, a, b, c)`, each slice in row-major `r·dim + c` order.
pub type BlockSlotsRef<'a> = (u32, &'a [u32], &'a [u32], &'a [u32]);

impl LinkedSchedule {
    /// Link a schedule: one pass of interning, rewriting and validation.
    /// Fails with the same errors the [`crate::ScheduleBuilder`] would raise
    /// if the schedule violates node ranges or the bandwidth constraint
    /// (relevant for schedules built by other means, e.g. deserialized).
    pub fn link(schedule: &Schedule) -> Result<LinkedSchedule, ModelError> {
        let n = schedule.n();
        let cap = schedule.capacity() as u32;
        let mut ls = LinkedSchedule {
            n,
            capacity: schedule.capacity(),
            rounds: 0,
            messages: 0,
            node_keys: vec![Vec::new(); n],
            node_slots: vec![HashMap::new(); n],
            steps: Vec::with_capacity(schedule.steps().len()),
            transfers: Vec::with_capacity(schedule.messages()),
            ops: Vec::new(),
            blocks: Vec::new(),
        };
        let mut send_stamp = vec![0u32; n];
        let mut recv_stamp = vec![0u32; n];
        let mut send_count = vec![0u32; n];
        let mut recv_count = vec![0u32; n];
        let mut stamp = 0u32;

        let check_node = |node: NodeId| -> Result<usize, ModelError> {
            let i = node.index();
            if i >= n {
                return Err(ModelError::NodeOutOfRange { node, n });
            }
            Ok(i)
        };

        for (step_idx, step) in schedule.steps().iter().enumerate() {
            match step {
                Step::Comm(Round { transfers }) => {
                    stamp += 1;
                    let start = ls.transfers.len();
                    for t in transfers {
                        let si = check_node(t.src)?;
                        let di = check_node(t.dst)?;
                        if send_stamp[si] != stamp {
                            send_stamp[si] = stamp;
                            send_count[si] = 0;
                        }
                        send_count[si] += 1;
                        if send_count[si] > cap {
                            return Err(ModelError::SendConflict {
                                round: ls.rounds,
                                node: t.src,
                            });
                        }
                        if recv_stamp[di] != stamp {
                            recv_stamp[di] = stamp;
                            recv_count[di] = 0;
                        }
                        recv_count[di] += 1;
                        if recv_count[di] > cap {
                            return Err(ModelError::ReceiveConflict {
                                round: ls.rounds,
                                node: t.dst,
                            });
                        }
                        let src_slot =
                            intern(&mut ls.node_keys[si], &mut ls.node_slots[si], t.src_key);
                        let dst_slot =
                            intern(&mut ls.node_keys[di], &mut ls.node_slots[di], t.dst_key);
                        ls.transfers.push(LinkedTransfer {
                            src: si as u32,
                            src_slot,
                            dst: di as u32,
                            dst_slot,
                            merge: t.merge,
                        });
                    }
                    // Stable sort groups deliveries by destination (and thus
                    // by shard) while keeping same-destination deliveries in
                    // program order — required for bit-identical stores.
                    ls.transfers[start..].sort_by_key(|t| t.dst);
                    ls.rounds += 1;
                    ls.messages += transfers.len();
                    ls.steps.push(LinkedStep::Comm {
                        transfers: start..ls.transfers.len(),
                        step: step_idx,
                    });
                }
                Step::Compute(ops) => {
                    let start = ls.ops.len();
                    for op in ops {
                        let ni = check_node(op.node())?;
                        let keys = &mut ls.node_keys[ni];
                        let slots = &mut ls.node_slots[ni];
                        let linked = match *op {
                            LocalOp::Mul { dst, lhs, rhs, .. } => LinkedOp::Mul {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                                lhs: intern(keys, slots, lhs),
                                rhs: intern(keys, slots, rhs),
                            },
                            LocalOp::AddAssign { dst, src, .. } => LinkedOp::AddAssign {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                                src: intern(keys, slots, src),
                            },
                            LocalOp::MulAdd { dst, lhs, rhs, .. } => LinkedOp::MulAdd {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                                lhs: intern(keys, slots, lhs),
                                rhs: intern(keys, slots, rhs),
                            },
                            LocalOp::SubAssign { dst, src, .. } => LinkedOp::SubAssign {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                                src: intern(keys, slots, src),
                            },
                            LocalOp::BlockMulAdd {
                                dim,
                                a_ns,
                                b_ns,
                                c_ns,
                                ..
                            } => {
                                let cells = (dim as u64) * (dim as u64);
                                let mut grab = |ns: u64| -> Vec<u32> {
                                    (0..cells)
                                        .map(|idx| intern(keys, slots, Key::tmp(ns, idx)))
                                        .collect()
                                };
                                let block = BlockSlots {
                                    dim,
                                    a: grab(a_ns),
                                    b: grab(b_ns),
                                    c: grab(c_ns),
                                };
                                ls.blocks.push(block);
                                LinkedOp::BlockMulAdd {
                                    node: ni as u32,
                                    block: (ls.blocks.len() - 1) as u32,
                                }
                            }
                            LocalOp::Copy { dst, src, .. } => LinkedOp::Copy {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                                src: intern(keys, slots, src),
                            },
                            LocalOp::Zero { dst, .. } => LinkedOp::Zero {
                                node: ni as u32,
                                dst: intern(keys, slots, dst),
                            },
                            LocalOp::Free { key, .. } => LinkedOp::Free {
                                node: ni as u32,
                                slot: intern(keys, slots, key),
                            },
                        };
                        ls.ops.push(linked);
                    }
                    // Stable sort by node: ops on distinct nodes touch
                    // disjoint stores and commute; per-node program order is
                    // preserved. Gives the parallel executor contiguous
                    // per-shard slices.
                    ls.ops[start..].sort_by_key(|op| op.node());
                    ls.steps.push(LinkedStep::Compute {
                        ops: start..ls.ops.len(),
                        step: step_idx,
                    });
                }
            }
        }
        Ok(ls)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-round send/receive capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Communication rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total messages.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Number of interned slots at `node`.
    pub fn slots_at(&self, node: NodeId) -> usize {
        self.node_keys[node.index()].len()
    }

    /// Total interned slots across all nodes.
    pub fn total_slots(&self) -> usize {
        self.node_keys.iter().map(Vec::len).sum()
    }

    /// The slot id of `key` at `node`, if the schedule mentions it.
    pub fn slot_of(&self, node: NodeId, key: Key) -> Option<u32> {
        self.node_slots[node.index()].get(&key).copied()
    }

    /// The key interned at `slot` of `node`.
    pub fn key_of(&self, node: NodeId, slot: u32) -> Key {
        self.node_keys[node.index()][slot as usize]
    }

    /// Number of linked steps. Linking produces exactly one linked step per
    /// source step, so this equals the source schedule's step count — an
    /// invariant `lowband-check` lints.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The linked steps in execution order, viewed against the flat
    /// transfer/op arrays. This is the read-only surface external
    /// validators (the `lowband-check` linter) walk.
    pub fn step_views(&self) -> impl Iterator<Item = LinkedStepView<'_>> {
        self.steps.iter().map(|s| match s {
            LinkedStep::Comm { transfers, step } => LinkedStepView::Comm {
                transfers: &self.transfers[transfers.clone()],
                step: *step,
            },
            LinkedStep::Compute { ops, step } => LinkedStepView::Compute {
                ops: &self.ops[ops.clone()],
                step: *step,
            },
        })
    }

    /// Number of entries in the `BlockMulAdd` side-table.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The pre-interned slot vectors of block `block` as
    /// `(dim, a, b, c)` in row-major `r·dim + c` order, or `None` if the
    /// index is out of range.
    pub fn block_slots(&self, block: u32) -> Option<BlockSlotsRef<'_>> {
        self.blocks
            .get(block as usize)
            .map(|b| (b.dim, &b.a[..], &b.b[..], &b.c[..]))
    }

    fn missing(&self, node: u32, slot: u32, step: usize) -> ModelError {
        ModelError::MissingValue {
            node: NodeId(node),
            key: self.node_keys[node as usize][slot as usize],
            step,
        }
    }
}

/// Convenience free-function form of [`LinkedSchedule::link`].
pub fn link(schedule: &Schedule) -> Result<LinkedSchedule, ModelError> {
    LinkedSchedule::link(schedule)
}

/// [`link`] with an instrumentation sink: wraps the pass in a `"link"`
/// span and records the artifact's size — rounds and transfers in, slot
/// stores and op list out.
pub fn link_traced<T: Tracer>(
    schedule: &Schedule,
    tracer: &mut T,
) -> Result<LinkedSchedule, ModelError> {
    tracer.span_enter("link");
    let result = LinkedSchedule::link(schedule);
    if let Ok(ls) = &result {
        tracer.counter("link.rounds", ls.rounds() as u64);
        tracer.counter("link.transfers", ls.messages() as u64);
        tracer.counter("link.ops", ls.ops.len() as u64);
        tracer.counter("link.slots", ls.total_slots() as u64);
    }
    tracer.span_exit("link");
    result
}

/// Slot-store executor for a [`LinkedSchedule`].
///
/// Each node's store is a flat `Vec<Option<V>>` indexed by slot id; `None`
/// means "key absent", exactly like a missing hash-map entry in
/// [`crate::Machine`]. Values loaded under keys the schedule never mentions
/// land in a per-node side map (they can't affect execution, but
/// [`LinkedMachine::snapshot`] must report them for bit-identical stores).
#[derive(Clone, Debug)]
pub struct LinkedMachine<'s, V: Semiring> {
    schedule: &'s LinkedSchedule,
    slots: Vec<Vec<Option<V>>>,
    extra: Vec<HashMap<Key, V>>,
}

impl<'s, V: Semiring> LinkedMachine<'s, V> {
    /// Create an empty machine sized for `schedule`.
    pub fn new(schedule: &'s LinkedSchedule) -> LinkedMachine<'s, V> {
        LinkedMachine {
            schedule,
            slots: schedule
                .node_keys
                .iter()
                .map(|keys| vec![None; keys.len()])
                .collect(),
            extra: vec![HashMap::new(); schedule.n],
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.schedule.n
    }

    /// The schedule this machine is linked against.
    pub fn schedule(&self) -> &'s LinkedSchedule {
        self.schedule
    }

    /// Place `value` under `key` at `node` (input loading).
    pub fn load(&mut self, node: NodeId, key: Key, value: V) {
        match self.schedule.node_slots[node.index()].get(&key) {
            Some(&slot) => self.slots[node.index()][slot as usize] = Some(value),
            None => {
                self.extra[node.index()].insert(key, value);
            }
        }
    }

    /// Read the value under `key` at `node`, if present.
    pub fn get(&self, node: NodeId, key: Key) -> Option<&V> {
        match self.schedule.node_slots[node.index()].get(&key) {
            Some(&slot) => self.slots[node.index()][slot as usize].as_ref(),
            None => self.extra[node.index()].get(&key),
        }
    }

    /// Read the value under `key` at `node`, or semiring zero if absent.
    pub fn get_or_zero(&self, node: NodeId, key: Key) -> V {
        self.get(node, key).cloned().unwrap_or_else(V::zero)
    }

    /// The full key–value store at `node` as a hash map — directly
    /// comparable against [`crate::Machine::snapshot`].
    pub fn snapshot(&self, node: NodeId) -> HashMap<Key, V> {
        let i = node.index();
        let mut map = self.extra[i].clone();
        for (slot, value) in self.slots[i].iter().enumerate() {
            if let Some(v) = value {
                map.insert(self.schedule.node_keys[i][slot], v.clone());
            }
        }
        map
    }

    /// Execute the linked schedule sequentially. The store mutations are
    /// bit-identical to [`crate::Machine::run`] on the source schedule; no
    /// hashing or constraint checking happens per event.
    pub fn run(&mut self) -> Result<ExecutionStats, ModelError> {
        self.run_traced(&mut NoopTracer)
    }

    /// [`LinkedMachine::run`] with an instrumentation sink: one
    /// [`RoundEvent`] per round, a `run.local_ops` counter per compute
    /// step, and per-node send/receive loads at the end. All payload
    /// gathering is guarded by `T::ENABLED` (a constant), so with
    /// [`NoopTracer`] this compiles to exactly [`LinkedMachine::run`] —
    /// the hash-free hot path stays hash-free and branch-free.
    pub fn run_traced<T: Tracer>(&mut self, tracer: &mut T) -> Result<ExecutionStats, ModelError> {
        let mut stats = ExecutionStats::default();
        self.run_guarded(tracer, &mut NoopFaults, RunWindow::full(), &mut stats)?;
        Ok(stats)
    }

    /// Fault-guarded, windowed variant of [`LinkedMachine::run_traced`];
    /// same contract as [`crate::Machine::run_guarded`]. Because linking
    /// produces exactly one step per source step, `window.start_step` and
    /// the returned resume cursor are **source**-schedule step indices —
    /// checkpoints are interchangeable with the reference executors.
    /// The parallel backend ([`LinkedMachine::run_parallel`]) intentionally
    /// has no guarded variant; drive fault experiments through this one.
    pub fn run_guarded<T: Tracer, F: FaultHook>(
        &mut self,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let start = Instant::now();
        let result = self.run_window(tracer, faults, window, stats);
        stats.elapsed += start.elapsed();
        result
    }

    fn run_window<T: Tracer, F: FaultHook>(
        &mut self,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let schedule = self.schedule;
        let mut inbox: Vec<V> = Vec::new();
        // Surviving transfer indices for the write phase of fault runs
        // (drops leave holes, so `ts.iter().zip(inbox)` would misalign).
        let mut keep: Vec<usize> = Vec::new();
        let (mut node_sends, mut node_recvs) = if T::ENABLED {
            (vec![0u64; schedule.n], vec![0u64; schedule.n])
        } else {
            (Vec::new(), Vec::new())
        };
        let mut ops_since_round = 0u64;
        let mut window_rounds = 0usize;
        let first = window.start_step.min(schedule.steps.len());
        for lstep in &schedule.steps[first..] {
            match lstep {
                LinkedStep::Comm { transfers, step } => {
                    // The window budget binds on every run, fault hook or
                    // not (see `crate::Machine::run_window`).
                    if window_rounds == window.max_rounds {
                        if T::ENABLED {
                            tracer.node_loads(&node_sends, &node_recvs);
                        }
                        return Ok(Some(*step));
                    }
                    window_rounds += 1;
                    if F::ENABLED {
                        if let Some(victim) = faults.crash(stats.rounds) {
                            if (victim as usize) < schedule.n {
                                if T::ENABLED {
                                    tracer.fault("fault.injected.crash", stats.rounds as u64);
                                }
                                self.slots[victim as usize]
                                    .iter_mut()
                                    .for_each(|cell| *cell = None);
                                self.extra[victim as usize].clear();
                                return Err(ModelError::NodeCrashed {
                                    node: NodeId(victim),
                                    round: stats.rounds,
                                });
                            }
                        }
                    }
                    let round_start = if T::ENABLED {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    let ts = &schedule.transfers[transfers.clone()];
                    // Read phase: gather all payloads before any delivery,
                    // so that delivery within a round is simultaneous.
                    inbox.clear();
                    inbox.reserve(ts.len());
                    let (mut sent_sum, mut recv_sum) = (0u64, 0u64);
                    if F::ENABLED {
                        keep.clear();
                    }
                    for (i, t) in ts.iter().enumerate() {
                        let mut v = self.slots[t.src as usize][t.src_slot as usize]
                            .clone()
                            .ok_or_else(|| schedule.missing(t.src, t.src_slot, *step))?;
                        if F::ENABLED {
                            sent_sum = sent_sum.wrapping_add(mix64(v.digest()));
                            match faults.tamper(stats.rounds, t.src) {
                                Tamper::None => {}
                                Tamper::Drop => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.drop", stats.rounds as u64);
                                    }
                                    continue;
                                }
                                Tamper::Corrupt => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.corrupt", stats.rounds as u64);
                                    }
                                    v = v.corrupted();
                                }
                            }
                            recv_sum = recv_sum.wrapping_add(mix64(v.digest()));
                            keep.push(i);
                        }
                        inbox.push(v);
                    }
                    // Write phase: deliver.
                    if F::ENABLED {
                        for (&i, payload) in keep.iter().zip(inbox.drain(..)) {
                            let t = &ts[i];
                            deliver(
                                &mut self.slots[t.dst as usize][t.dst_slot as usize],
                                t.merge,
                                payload,
                            );
                        }
                        if sent_sum != recv_sum {
                            if T::ENABLED {
                                tracer.fault("fault.detected", stats.rounds as u64);
                            }
                            return Err(ModelError::Corruption {
                                round: stats.rounds,
                            });
                        }
                    } else {
                        for (t, payload) in ts.iter().zip(inbox.drain(..)) {
                            deliver(
                                &mut self.slots[t.dst as usize][t.dst_slot as usize],
                                t.merge,
                                payload,
                            );
                        }
                    }
                    stats.record_round(ts.len());
                    if T::ENABLED {
                        for t in ts {
                            node_sends[t.src as usize] += 1;
                            node_recvs[t.dst as usize] += 1;
                        }
                        tracer.round(RoundEvent {
                            index: (stats.rounds - 1) as u64,
                            messages: ts.len() as u64,
                            local_ops: ops_since_round,
                            nanos: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        });
                        ops_since_round = 0;
                    }
                }
                LinkedStep::Compute { ops, step } => {
                    for op in &schedule.ops[ops.clone()] {
                        let store = &mut self.slots[op.node() as usize];
                        apply_linked_op(store, op, schedule, *step)?;
                        stats.local_ops += 1;
                    }
                    tracer.counter("run.local_ops", ops.len() as u64);
                    if T::ENABLED {
                        ops_since_round += ops.len() as u64;
                    }
                }
            }
        }
        if T::ENABLED {
            tracer.node_loads(&node_sends, &node_recvs);
        }
        Ok(None)
    }

    /// Snapshot machine state into an executor-independent [`Checkpoint`]
    /// (stores in canonical hash-map form, so it restores onto any backend).
    pub fn checkpoint(&self, next_step: usize, stats: ExecutionStats) -> Checkpoint<V> {
        let stores = (0..self.n())
            .map(|i| self.snapshot(NodeId(i as u32)))
            .collect();
        Checkpoint::new(next_step, stats, stores)
    }

    /// Restore every store from a [`Checkpoint`] taken on any executor
    /// backend of the same network size. Keys the linked schedule never
    /// mentions land back in the side map, exactly as [`LinkedMachine::load`]
    /// places them.
    pub fn restore(&mut self, ckpt: &Checkpoint<V>) -> Result<(), ModelError> {
        if ckpt.n() != self.n() {
            return Err(ModelError::SizeMismatch {
                expected: ckpt.n(),
                actual: self.n(),
            });
        }
        self.reset();
        for (i, saved) in ckpt.stores().iter().enumerate() {
            for (key, value) in saved {
                self.load(NodeId(i as u32), *key, value.clone());
            }
        }
        Ok(())
    }

    /// Empty every slot and side map **in place**, returning the machine to
    /// its freshly-constructed state while keeping every allocation — the
    /// per-node slot vectors and side-map tables are cleared, not dropped.
    ///
    /// This is the compile-once/execute-many primitive: a serving loop
    /// streams K value-sets through one machine by alternating
    /// `reset_values` → load → run, paying the structure-dependent
    /// allocation cost once per [`LinkedSchedule`] instead of once per
    /// value-set (see `Instance::reload_linked` in `lowband-core`).
    pub fn reset_values(&mut self) {
        debug_assert!(
            self.slots.len() == self.schedule.n
                && self
                    .slots
                    .iter()
                    .zip(&self.schedule.node_keys)
                    .all(|(slots, keys)| slots.len() == keys.len()),
            "slot stores diverged from the linked schedule's interned layout \
             (stale machine reused against a different compiled plan?)"
        );
        for slots in &mut self.slots {
            slots.iter_mut().for_each(|cell| *cell = None);
        }
        for extra in &mut self.extra {
            extra.clear();
        }
    }

    /// Alias of [`LinkedMachine::reset_values`], kept so the
    /// checkpoint/restore surface (`checkpoint`/`restore`/`reset`) stays
    /// interchangeable across all executor backends.
    pub fn reset(&mut self) {
        self.reset_values();
    }

    /// Execute the linked schedule across worker threads; `threads = 0`
    /// selects the available parallelism. Final stores are identical to
    /// [`LinkedMachine::run`].
    ///
    /// Because each round's transfers are pre-sorted by destination, every
    /// worker's deliveries form one contiguous slice — no per-round
    /// re-sharding allocation as in [`crate::ParallelMachine`].
    pub fn run_parallel(&mut self, threads: usize) -> Result<ExecutionStats, ModelError> {
        self.run_parallel_traced(threads, &mut NoopTracer)
    }

    /// [`LinkedMachine::run_parallel`] with an instrumentation sink; same
    /// event stream as [`LinkedMachine::run_traced`]. With [`NoopTracer`]
    /// this compiles to exactly [`LinkedMachine::run_parallel`].
    pub fn run_parallel_traced<T: Tracer>(
        &mut self,
        threads: usize,
        tracer: &mut T,
    ) -> Result<ExecutionStats, ModelError> {
        let schedule = self.schedule;
        let n = schedule.n;
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n.max(1));
        let bounds = shard_bounds(n, threads);
        let start = Instant::now();
        let mut stats = ExecutionStats::default();
        let (mut node_sends, mut node_recvs) = if T::ENABLED {
            (vec![0u64; n], vec![0u64; n])
        } else {
            (Vec::new(), Vec::new())
        };
        let mut ops_since_round = 0u64;

        for step in &schedule.steps {
            match step {
                LinkedStep::Comm { transfers, step } => {
                    let round_start = if T::ENABLED {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    let ts = &schedule.transfers[transfers.clone()];
                    // Read phase (parallel, immutable stores).
                    let slots = &self.slots;
                    let chunk = ts.len().div_ceil(threads).max(1);
                    let payloads: Vec<Result<V, ModelError>> = std::thread::scope(|scope| {
                        let handles: Vec<_> = ts
                            .chunks(chunk)
                            .map(|part| {
                                scope.spawn(move || {
                                    part.iter()
                                        .map(|t| {
                                            slots[t.src as usize][t.src_slot as usize]
                                                .clone()
                                                .ok_or_else(|| {
                                                    schedule.missing(t.src, t.src_slot, *step)
                                                })
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        // Join every handle (an unjoined panicked thread
                        // would re-panic when the scope exits); a panicked
                        // reader poisons the round with a typed error.
                        let mut out = Vec::with_capacity(ts.len());
                        let mut panicked = false;
                        for h in handles {
                            match h.join() {
                                Ok(part) => out.extend(part),
                                Err(_) => panicked = true,
                            }
                        }
                        if panicked {
                            out.clear();
                            out.resize_with(ts.len(), || {
                                Err(ModelError::WorkerPanicked { step: *step })
                            });
                        }
                        out
                    });
                    // Write phase: ts is sorted by dst, so each shard's
                    // deliveries are one contiguous slice.
                    let mut first_err = None;
                    let mut values = Vec::with_capacity(payloads.len());
                    for p in payloads {
                        match p {
                            Ok(v) => values.push(v),
                            Err(e) => {
                                first_err.get_or_insert(e);
                                values.push(V::zero());
                            }
                        }
                    }
                    if let Some(e) = first_err {
                        return Err(e);
                    }
                    let delivered: Result<(), ModelError> = std::thread::scope(|scope| {
                        let mut handles = Vec::with_capacity(threads);
                        let mut rest: &mut [Vec<Option<V>>] = &mut self.slots;
                        let mut ts_rest = ts;
                        let mut vals_rest: &mut [V] = &mut values;
                        for s in 0..threads {
                            let take = bounds[s + 1] - bounds[s];
                            let (block, tail) = rest.split_at_mut(take);
                            rest = tail;
                            let split =
                                ts_rest.partition_point(|t| (t.dst as usize) < bounds[s + 1]);
                            let (ts_here, ts_tail) = ts_rest.split_at(split);
                            ts_rest = ts_tail;
                            let (vals_here, vals_tail) =
                                std::mem::take(&mut vals_rest).split_at_mut(split);
                            vals_rest = vals_tail;
                            let base = bounds[s];
                            handles.push(scope.spawn(move || {
                                for (t, v) in ts_here.iter().zip(vals_here) {
                                    deliver(
                                        &mut block[t.dst as usize - base][t.dst_slot as usize],
                                        t.merge,
                                        std::mem::replace(v, V::zero()),
                                    );
                                }
                            }));
                        }
                        let mut result = Ok(());
                        for h in handles {
                            if h.join().is_err() {
                                result = Err(ModelError::WorkerPanicked { step: *step });
                            }
                        }
                        result
                    });
                    delivered?;
                    stats.record_round(ts.len());
                    if T::ENABLED {
                        for t in ts {
                            node_sends[t.src as usize] += 1;
                            node_recvs[t.dst as usize] += 1;
                        }
                        tracer.round(RoundEvent {
                            index: (stats.rounds - 1) as u64,
                            messages: ts.len() as u64,
                            local_ops: ops_since_round,
                            nanos: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        });
                        ops_since_round = 0;
                    }
                }
                LinkedStep::Compute { ops, step } => {
                    let ops_all = &schedule.ops[ops.clone()];
                    // ops are sorted by node: shard into contiguous slices.
                    let results: Vec<Result<(), ModelError>> = std::thread::scope(|scope| {
                        let mut handles = Vec::with_capacity(threads);
                        let mut rest: &mut [Vec<Option<V>>] = &mut self.slots;
                        let mut ops_rest = ops_all;
                        for s in 0..threads {
                            let take = bounds[s + 1] - bounds[s];
                            let (block, tail) = rest.split_at_mut(take);
                            rest = tail;
                            let split =
                                ops_rest.partition_point(|op| (op.node() as usize) < bounds[s + 1]);
                            let (ops_here, ops_tail) = ops_rest.split_at(split);
                            ops_rest = ops_tail;
                            let base = bounds[s];
                            let step = *step;
                            handles.push(scope.spawn(move || {
                                for op in ops_here {
                                    let store = &mut block[op.node() as usize - base];
                                    apply_linked_op(store, op, schedule, step)?;
                                }
                                Ok(())
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| {
                                h.join()
                                    .unwrap_or(Err(ModelError::WorkerPanicked { step: *step }))
                            })
                            .collect()
                    });
                    results.into_iter().collect::<Result<(), ModelError>>()?;
                    stats.local_ops += ops_all.len();
                    tracer.counter("run.local_ops", ops_all.len() as u64);
                    if T::ENABLED {
                        ops_since_round += ops_all.len() as u64;
                    }
                }
            }
        }
        if T::ENABLED {
            tracer.node_loads(&node_sends, &node_recvs);
        }
        stats.elapsed = start.elapsed();
        Ok(stats)
    }
}

#[inline]
fn deliver<V: Semiring>(cell: &mut Option<V>, merge: Merge, payload: V) {
    match merge {
        Merge::Overwrite => *cell = Some(payload),
        Merge::Add => {
            let cur = cell.take().unwrap_or_else(V::zero);
            *cell = Some(cur.add(&payload));
        }
    }
}

fn apply_linked_op<V: Semiring>(
    store: &mut [Option<V>],
    op: &LinkedOp,
    schedule: &LinkedSchedule,
    step: usize,
) -> Result<(), ModelError> {
    let read = |store: &[Option<V>], node: u32, slot: u32| -> Result<V, ModelError> {
        store[slot as usize]
            .clone()
            .ok_or_else(|| schedule.missing(node, slot, step))
    };
    match *op {
        LinkedOp::Mul {
            node,
            dst,
            lhs,
            rhs,
        } => {
            let a = read(store, node, lhs)?;
            let b = read(store, node, rhs)?;
            store[dst as usize] = Some(a.mul(&b));
        }
        LinkedOp::AddAssign { node, dst, src } => {
            let s = read(store, node, src)?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::zero);
            *cell = Some(cur.add(&s));
        }
        LinkedOp::MulAdd {
            node,
            dst,
            lhs,
            rhs,
        } => {
            let a = read(store, node, lhs)?;
            let b = read(store, node, rhs)?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::zero);
            *cell = Some(cur.add(&a.mul(&b)));
        }
        LinkedOp::SubAssign { node, dst, src } => {
            let s = read(store, node, src)?;
            let negated = s.try_neg().ok_or(ModelError::UnsupportedOp {
                node: NodeId(node),
                step,
                what: "additive inverses (a ring)",
            })?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::zero);
            *cell = Some(cur.add(&negated));
        }
        LinkedOp::BlockMulAdd { block, .. } => {
            let spec = &schedule.blocks[block as usize];
            let dim = spec.dim as usize;
            let fetch = |slots: &[u32]| -> Vec<V> {
                slots
                    .iter()
                    .map(|&s| store[s as usize].clone().unwrap_or_else(V::zero))
                    .collect()
            };
            let a = fetch(&spec.a);
            let b = fetch(&spec.b);
            let mut out = vec![V::zero(); dim * dim];
            for r in 0..dim {
                for q in 0..dim {
                    let av = &a[r * dim + q];
                    if av.is_zero() {
                        continue;
                    }
                    for c in 0..dim {
                        let bv = &b[q * dim + c];
                        if bv.is_zero() {
                            continue;
                        }
                        let cell = &mut out[r * dim + c];
                        *cell = cell.add(&av.mul(bv));
                    }
                }
            }
            // Every output slot materializes (zeros included), matching the
            // reference kernel's structural-materialization guarantee.
            for (&slot, v) in spec.c.iter().zip(out) {
                let cell = &mut store[slot as usize];
                let cur = cell.take().unwrap_or_else(V::zero);
                *cell = Some(cur.add(&v));
            }
        }
        LinkedOp::Copy { node, dst, src } => {
            let s = read(store, node, src)?;
            store[dst as usize] = Some(s);
        }
        LinkedOp::Zero { dst, .. } => {
            store[dst as usize] = Some(V::zero());
        }
        LinkedOp::Free { slot, .. } => {
            store[slot as usize] = None;
        }
    }
    Ok(())
}

/// Struct-of-arrays batched executor for a [`LinkedSchedule`]: every slot
/// stores a *lane plane* of `LANES` independent values
/// ([`PackedSemiring::Plane`]), so one interpretation of the schedule —
/// one pass over the linked steps, one decode per transfer and op —
/// advances `LANES` batch members at once. Schedule-decode cost amortizes
/// to `1/LANES` per member and the semiring ops become straight-line
/// plane loops (bit-sliced `u64` ops for two-element algebras: 64 members
/// per word).
///
/// The machine executes the *same* [`LinkedSchedule`] as
/// [`LinkedMachine`], unmodified — `BlockMulAdd` side-tables included —
/// and every lane's store evolution is bit-identical to a scalar run of
/// that lane's values (the packed ≡ sequential suite in `tests/batch.rs`
/// asserts this across semirings). Presence is plane-level: a slot is
/// occupied iff *any* lane loaded it, and unloaded lanes of an occupied
/// plane read as [`Semiring::zero`]. The batch runners always load every
/// lane with value-sets over the same supports, so plane presence
/// coincides with each member's scalar presence; tail lanes of a ragged
/// batch (`K % LANES ≠ 0`) stay zero-padded and are simply not reported.
///
/// Fault-guarded runs keep **per-lane** rolling round checksums
/// ([`PackedSemiring::lane_digest`]), so in-flight corruption is detected
/// *and localized to the batch member it hit* (`fault.detected.lane`
/// tracer event); a dropped message affects the physical plane, i.e.
/// every lane, exactly as one lost wire message would.
#[derive(Clone, Debug)]
pub struct PackedLinkedMachine<'s, V: PackedSemiring<LANES>, const LANES: usize> {
    schedule: &'s LinkedSchedule,
    slots: Vec<Vec<Option<V::Plane>>>,
    extra: Vec<HashMap<Key, V::Plane>>,
}

impl<'s, V: PackedSemiring<LANES>, const LANES: usize> PackedLinkedMachine<'s, V, LANES> {
    /// Create an empty packed machine sized for `schedule`; all planes
    /// start absent. `LANES` must be `1..=64` (a zero mask is one `u64`).
    pub fn new(schedule: &'s LinkedSchedule) -> PackedLinkedMachine<'s, V, LANES> {
        const {
            assert!(
                LANES >= 1 && LANES <= 64,
                "lane planes carry 1..=64 members"
            );
        }
        PackedLinkedMachine {
            schedule,
            slots: schedule
                .node_keys
                .iter()
                .map(|keys| vec![None; keys.len()])
                .collect(),
            extra: vec![HashMap::new(); schedule.n],
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.schedule.n
    }

    /// Lane count (batch members per plane).
    pub fn lanes(&self) -> usize {
        LANES
    }

    /// The schedule this machine is linked against.
    pub fn schedule(&self) -> &'s LinkedSchedule {
        self.schedule
    }

    /// Place `value` under `key` at `node` in lane `lane`. The first load
    /// into an absent plane zero-fills the other lanes.
    pub fn load_lane(&mut self, node: NodeId, key: Key, lane: usize, value: V) {
        debug_assert!(lane < LANES, "lane {lane} out of range for {LANES} lanes");
        let plane = match self.schedule.node_slots[node.index()].get(&key) {
            Some(&slot) => {
                self.slots[node.index()][slot as usize].get_or_insert_with(V::packed_zero)
            }
            None => self.extra[node.index()]
                .entry(key)
                .or_insert_with(V::packed_zero),
        };
        V::insert(plane, lane, value);
    }

    /// [`PackedLinkedMachine::load_lane`] with the slot already resolved
    /// (`slot < ` [`LinkedSchedule::slots_at`]` (node)`): the hash-free
    /// fast path for batch loaders that precompute each support entry's
    /// `(node, slot)` site once per plan and then stream `LANES`
    /// value-sets through it — interning is structure-only work, so it
    /// amortizes across the whole batch exactly like the schedule decode.
    #[inline]
    pub fn load_lane_slot(&mut self, node: NodeId, slot: u32, lane: usize, value: V) {
        debug_assert!(lane < LANES, "lane {lane} out of range for {LANES} lanes");
        let plane = self.slots[node.index()][slot as usize].get_or_insert_with(V::packed_zero);
        V::insert(plane, lane, value);
    }

    /// [`PackedLinkedMachine::get_or_zero_lane`] with the slot already
    /// resolved — the hash-free extraction counterpart of
    /// [`PackedLinkedMachine::load_lane_slot`].
    #[inline]
    pub fn get_or_zero_lane_slot(&self, node: NodeId, slot: u32, lane: usize) -> V {
        match &self.slots[node.index()][slot as usize] {
            Some(plane) => V::extract(plane, lane),
            None => V::zero(),
        }
    }

    /// Read lane `lane` of the value under `key` at `node`, if the plane
    /// is occupied (an occupied plane's unloaded lanes read as zero).
    pub fn get_lane(&self, node: NodeId, key: Key, lane: usize) -> Option<V> {
        debug_assert!(lane < LANES, "lane {lane} out of range for {LANES} lanes");
        let plane = match self.schedule.node_slots[node.index()].get(&key) {
            Some(&slot) => self.slots[node.index()][slot as usize].as_ref(),
            None => self.extra[node.index()].get(&key),
        };
        plane.map(|p| V::extract(p, lane))
    }

    /// Read lane `lane` of the value under `key` at `node`, or zero.
    pub fn get_or_zero_lane(&self, node: NodeId, key: Key, lane: usize) -> V {
        self.get_lane(node, key, lane).unwrap_or_else(V::zero)
    }

    /// One lane's full key–value store at `node` as a hash map — directly
    /// comparable against [`LinkedMachine::snapshot`] of a scalar run of
    /// that lane's values.
    pub fn snapshot_lane(&self, node: NodeId, lane: usize) -> HashMap<Key, V> {
        let i = node.index();
        let mut map: HashMap<Key, V> = self.extra[i]
            .iter()
            .map(|(k, p)| (*k, V::extract(p, lane)))
            .collect();
        for (slot, plane) in self.slots[i].iter().enumerate() {
            if let Some(p) = plane {
                map.insert(self.schedule.node_keys[i][slot], V::extract(p, lane));
            }
        }
        map
    }

    /// Empty every plane and side map in place, keeping every allocation —
    /// the packed analogue of [`LinkedMachine::reset_values`], and the
    /// same compile-once/execute-many primitive: a serving loop streams
    /// lane groups through one machine by alternating `reset_values` →
    /// load → run.
    pub fn reset_values(&mut self) {
        debug_assert!(
            self.slots.len() == self.schedule.n
                && self
                    .slots
                    .iter()
                    .zip(&self.schedule.node_keys)
                    .all(|(slots, keys)| slots.len() == keys.len()),
            "plane stores diverged from the linked schedule's interned layout \
             (stale machine reused against a different compiled plan?)"
        );
        for slots in &mut self.slots {
            slots.iter_mut().for_each(|cell| *cell = None);
        }
        for extra in &mut self.extra {
            extra.clear();
        }
    }

    /// Execute the linked schedule once, advancing all `LANES` lanes.
    /// Each lane's store mutations are bit-identical to a scalar
    /// [`LinkedMachine::run`] over that lane's values.
    pub fn run(&mut self) -> Result<ExecutionStats, ModelError> {
        self.run_traced(&mut NoopTracer)
    }

    /// [`PackedLinkedMachine::run`] with an instrumentation sink: the
    /// same per-round [`RoundEvent`] stream, `run.local_ops` counters and
    /// per-node send/receive loads as the scalar executor — one event per
    /// *physical* round, not per lane.
    pub fn run_traced<T: Tracer>(&mut self, tracer: &mut T) -> Result<ExecutionStats, ModelError> {
        let mut stats = ExecutionStats::default();
        self.run_guarded(tracer, &mut NoopFaults, RunWindow::full(), &mut stats)?;
        Ok(stats)
    }

    /// Fault-guarded, windowed variant of [`PackedLinkedMachine::run_traced`];
    /// same window contract as [`LinkedMachine::run_guarded`] (source-step
    /// resume cursors). Under an enabled [`FaultHook`] the machine keeps
    /// one rolling checksum **per lane**: a `Tamper::Corrupt` perturbs a
    /// single deterministic lane (`round % LANES`), and the resulting
    /// [`ModelError::Corruption`] is preceded by a `fault.detected.lane`
    /// tracer event naming the corrupted member's lane — detection
    /// localizes the member, not just the round. A `Tamper::Drop` loses
    /// the physical message, i.e. every lane of the plane at once.
    pub fn run_guarded<T: Tracer, F: FaultHook>(
        &mut self,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let start = Instant::now();
        let result = self.run_window(tracer, faults, window, stats);
        stats.elapsed += start.elapsed();
        result
    }

    fn run_window<T: Tracer, F: FaultHook>(
        &mut self,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let schedule = self.schedule;
        let mut inbox: Vec<V::Plane> = Vec::new();
        let mut keep: Vec<usize> = Vec::new();
        let (mut node_sends, mut node_recvs) = if T::ENABLED {
            (vec![0u64; schedule.n], vec![0u64; schedule.n])
        } else {
            (Vec::new(), Vec::new())
        };
        let mut ops_since_round = 0u64;
        let mut window_rounds = 0usize;
        let first = window.start_step.min(schedule.steps.len());
        for lstep in &schedule.steps[first..] {
            match lstep {
                LinkedStep::Comm { transfers, step } => {
                    if window_rounds == window.max_rounds {
                        if T::ENABLED {
                            tracer.node_loads(&node_sends, &node_recvs);
                        }
                        return Ok(Some(*step));
                    }
                    window_rounds += 1;
                    if F::ENABLED {
                        if let Some(victim) = faults.crash(stats.rounds) {
                            if (victim as usize) < schedule.n {
                                if T::ENABLED {
                                    tracer.fault("fault.injected.crash", stats.rounds as u64);
                                }
                                self.slots[victim as usize]
                                    .iter_mut()
                                    .for_each(|cell| *cell = None);
                                self.extra[victim as usize].clear();
                                return Err(ModelError::NodeCrashed {
                                    node: NodeId(victim),
                                    round: stats.rounds,
                                });
                            }
                        }
                    }
                    let round_start = if T::ENABLED {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    let ts = &schedule.transfers[transfers.clone()];
                    // Read phase: gather all payload planes before any
                    // delivery, so delivery within a round is simultaneous
                    // for every lane.
                    inbox.clear();
                    inbox.reserve(ts.len());
                    let (mut sent_sum, mut recv_sum) = ([0u64; LANES], [0u64; LANES]);
                    if F::ENABLED {
                        keep.clear();
                    }
                    for (i, t) in ts.iter().enumerate() {
                        let mut plane = self.slots[t.src as usize][t.src_slot as usize]
                            .clone()
                            .ok_or_else(|| schedule.missing(t.src, t.src_slot, *step))?;
                        if F::ENABLED {
                            for (lane, sum) in sent_sum.iter_mut().enumerate() {
                                *sum = sum.wrapping_add(mix64(V::lane_digest(&plane, lane)));
                            }
                            match faults.tamper(stats.rounds, t.src) {
                                Tamper::None => {}
                                Tamper::Drop => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.drop", stats.rounds as u64);
                                    }
                                    continue;
                                }
                                Tamper::Corrupt => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.corrupt", stats.rounds as u64);
                                    }
                                    V::corrupt_lane(&mut plane, stats.rounds % LANES);
                                }
                            }
                            for (lane, sum) in recv_sum.iter_mut().enumerate() {
                                *sum = sum.wrapping_add(mix64(V::lane_digest(&plane, lane)));
                            }
                            keep.push(i);
                        }
                        inbox.push(plane);
                    }
                    // Write phase: deliver.
                    if F::ENABLED {
                        for (&i, payload) in keep.iter().zip(inbox.drain(..)) {
                            let t = &ts[i];
                            deliver_packed::<V, LANES>(
                                &mut self.slots[t.dst as usize][t.dst_slot as usize],
                                t.merge,
                                payload,
                            );
                        }
                        if sent_sum != recv_sum {
                            if T::ENABLED {
                                tracer.fault("fault.detected", stats.rounds as u64);
                                // Name the first mismatching lane so the
                                // driver can localize the corrupt member.
                                if let Some(lane) = (0..LANES).find(|&l| sent_sum[l] != recv_sum[l])
                                {
                                    tracer.fault("fault.detected.lane", lane as u64);
                                }
                            }
                            return Err(ModelError::Corruption {
                                round: stats.rounds,
                            });
                        }
                    } else {
                        for (t, payload) in ts.iter().zip(inbox.drain(..)) {
                            deliver_packed::<V, LANES>(
                                &mut self.slots[t.dst as usize][t.dst_slot as usize],
                                t.merge,
                                payload,
                            );
                        }
                    }
                    stats.record_round(ts.len());
                    if T::ENABLED {
                        for t in ts {
                            node_sends[t.src as usize] += 1;
                            node_recvs[t.dst as usize] += 1;
                        }
                        tracer.round(RoundEvent {
                            index: (stats.rounds - 1) as u64,
                            messages: ts.len() as u64,
                            local_ops: ops_since_round,
                            nanos: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        });
                        ops_since_round = 0;
                    }
                }
                LinkedStep::Compute { ops, step } => {
                    for op in &schedule.ops[ops.clone()] {
                        let store = &mut self.slots[op.node() as usize];
                        apply_packed_op::<V, LANES>(store, op, schedule, *step)?;
                        stats.local_ops += 1;
                    }
                    tracer.counter("run.local_ops", ops.len() as u64);
                    if T::ENABLED {
                        ops_since_round += ops.len() as u64;
                    }
                }
            }
        }
        if T::ENABLED {
            tracer.node_loads(&node_sends, &node_recvs);
        }
        Ok(None)
    }
}

#[inline]
fn deliver_packed<V: PackedSemiring<LANES>, const LANES: usize>(
    cell: &mut Option<V::Plane>,
    merge: Merge,
    payload: V::Plane,
) {
    match merge {
        Merge::Overwrite => *cell = Some(payload),
        Merge::Add => {
            let cur = cell.take().unwrap_or_else(V::packed_zero);
            *cell = Some(V::packed_add(&cur, &payload));
        }
    }
}

fn apply_packed_op<V: PackedSemiring<LANES>, const LANES: usize>(
    store: &mut [Option<V::Plane>],
    op: &LinkedOp,
    schedule: &LinkedSchedule,
    step: usize,
) -> Result<(), ModelError> {
    let read = |store: &[Option<V::Plane>], node: u32, slot: u32| -> Result<V::Plane, ModelError> {
        store[slot as usize]
            .clone()
            .ok_or_else(|| schedule.missing(node, slot, step))
    };
    match *op {
        LinkedOp::Mul {
            node,
            dst,
            lhs,
            rhs,
        } => {
            let a = read(store, node, lhs)?;
            let b = read(store, node, rhs)?;
            store[dst as usize] = Some(V::packed_mul(&a, &b));
        }
        LinkedOp::AddAssign { node, dst, src } => {
            let s = read(store, node, src)?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::packed_zero);
            *cell = Some(V::packed_add(&cur, &s));
        }
        LinkedOp::MulAdd {
            node,
            dst,
            lhs,
            rhs,
        } => {
            let a = read(store, node, lhs)?;
            let b = read(store, node, rhs)?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::packed_zero);
            *cell = Some(V::packed_mul_add(&cur, &a, &b));
        }
        LinkedOp::SubAssign { node, dst, src } => {
            let s = read(store, node, src)?;
            let negated = V::packed_try_neg(&s).ok_or(ModelError::UnsupportedOp {
                node: NodeId(node),
                step,
                what: "additive inverses (a ring)",
            })?;
            let cell = &mut store[dst as usize];
            let cur = cell.take().unwrap_or_else(V::packed_zero);
            *cell = Some(V::packed_add(&cur, &negated));
        }
        LinkedOp::BlockMulAdd { block, .. } => {
            let spec = &schedule.blocks[block as usize];
            let dim = spec.dim as usize;
            let lanes_mask = if LANES == 64 { !0 } else { (1u64 << LANES) - 1 };
            let fetch = |slots: &[u32]| -> Vec<V::Plane> {
                slots
                    .iter()
                    .map(|&s| store[s as usize].clone().unwrap_or_else(V::packed_zero))
                    .collect()
            };
            let a = fetch(&spec.a);
            let b = fetch(&spec.b);
            let mut out = vec![V::packed_zero(); dim * dim];
            for r in 0..dim {
                for q in 0..dim {
                    let av = &a[r * dim + q];
                    // Skip only when *every* lane is zero; a zero lane of a
                    // live plane contributes `cell + 0·b = cell`, which is
                    // bit-identical to the scalar kernel's skip.
                    if V::zero_mask(av) & lanes_mask == lanes_mask {
                        continue;
                    }
                    for c in 0..dim {
                        let bv = &b[q * dim + c];
                        if V::zero_mask(bv) & lanes_mask == lanes_mask {
                            continue;
                        }
                        let cell = &mut out[r * dim + c];
                        *cell = V::packed_mul_add(cell, av, bv);
                    }
                }
            }
            // Every output slot materializes (zeros included), matching the
            // reference kernel's structural-materialization guarantee.
            for (&slot, v) in spec.c.iter().zip(out) {
                let cell = &mut store[slot as usize];
                let cur = cell.take().unwrap_or_else(V::packed_zero);
                *cell = Some(V::packed_add(&cur, &v));
            }
        }
        LinkedOp::Copy { node, dst, src } => {
            let s = read(store, node, src)?;
            store[dst as usize] = Some(s);
        }
        LinkedOp::Zero { dst, .. } => {
            store[dst as usize] = Some(V::packed_zero());
        }
        LinkedOp::Free { slot, .. } => {
            store[slot as usize] = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::parallel::shard_of;
    use crate::{Machine, ScheduleBuilder, Transfer};

    /// `shard_bounds` and `shard_of` must agree: each worker's contiguous
    /// node block is exactly the set of nodes `shard_of` maps to it. The
    /// parallel runner relies on this to pair `split_at_mut` store blocks
    /// with `partition_point` event slices.
    fn shard_invariant_holds(n: usize, threads: usize) -> bool {
        let bounds = shard_bounds(n, threads);
        (0..n).all(|node| {
            let s = shard_of(node, n, threads);
            bounds[s] <= node && node < bounds[s + 1]
        })
    }

    fn xfer(src: u32, sk: Key, dst: u32, dk: Key, merge: Merge) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: sk,
            dst: NodeId(dst),
            dst_key: dk,
            merge,
        }
    }

    /// A schedule exercising every op kind plus Add/Overwrite transfers.
    fn mixed_schedule(n: usize) -> Schedule {
        let mut b = ScheduleBuilder::new(n);
        // Round 1: ring shift with Add into accumulators.
        b.round(
            (0..n as u32)
                .map(|i| {
                    xfer(
                        i,
                        Key::a(u64::from(i), 0),
                        (i + 1) % n as u32,
                        Key::x(0, u64::from(i)),
                        Merge::Add,
                    )
                })
                .collect(),
        )
        .unwrap();
        // Compute: every node multiplies and accumulates.
        b.compute(
            (0..n as u32)
                .flat_map(|i| {
                    [
                        LocalOp::Mul {
                            node: NodeId(i),
                            dst: Key::prod(u64::from(i), 0),
                            lhs: Key::a(u64::from(i), 0),
                            rhs: Key::b(u64::from(i), 0),
                        },
                        LocalOp::MulAdd {
                            node: NodeId(i),
                            dst: Key::x(1, 1),
                            lhs: Key::a(u64::from(i), 0),
                            rhs: Key::b(u64::from(i), 0),
                        },
                        LocalOp::AddAssign {
                            node: NodeId(i),
                            dst: Key::x(1, 1),
                            src: Key::prod(u64::from(i), 0),
                        },
                        LocalOp::Copy {
                            node: NodeId(i),
                            dst: Key::tmp(7, u64::from(i)),
                            src: Key::x(1, 1),
                        },
                        LocalOp::Zero {
                            node: NodeId(i),
                            dst: Key::tmp(8, 0),
                        },
                        LocalOp::Free {
                            node: NodeId(i),
                            key: Key::prod(u64::from(i), 0),
                        },
                    ]
                })
                .collect(),
        )
        .unwrap();
        // Round 2: overwrite shift back.
        b.round(
            (0..n as u32)
                .map(|i| {
                    xfer(
                        i,
                        Key::tmp(7, u64::from(i)),
                        (i + n as u32 - 1) % n as u32,
                        Key::tmp(9, 0),
                        Merge::Overwrite,
                    )
                })
                .collect(),
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn linking_is_idempotent_on_counts() {
        let s = mixed_schedule(8);
        let l = LinkedSchedule::link(&s).unwrap();
        assert_eq!(l.n(), s.n());
        assert_eq!(l.capacity(), s.capacity());
        assert_eq!(l.rounds(), s.rounds());
        assert_eq!(l.messages(), s.messages());
        assert!(l.total_slots() > 0);
    }

    #[test]
    fn transfers_sorted_by_destination_within_rounds() {
        let s = mixed_schedule(8);
        let l = LinkedSchedule::link(&s).unwrap();
        for step in &l.steps {
            if let LinkedStep::Comm { transfers, .. } = step {
                let ts = &l.transfers[transfers.clone()];
                assert!(ts.windows(2).all(|w| w[0].dst <= w[1].dst));
            }
        }
    }

    #[test]
    fn linked_matches_hash_executor_bit_for_bit() {
        let n = 8;
        let s = mixed_schedule(n);
        let l = LinkedSchedule::link(&s).unwrap();
        let mut reference: Machine<Nat> = Machine::new(n);
        let mut linked: LinkedMachine<Nat> = LinkedMachine::new(&l);
        for i in 0..n as u32 {
            for (key, v) in [
                (Key::a(u64::from(i), 0), u64::from(i) + 1),
                (Key::b(u64::from(i), 0), 2 * u64::from(i) + 1),
            ] {
                reference.load(NodeId(i), key, Nat(v));
                linked.load(NodeId(i), key, Nat(v));
            }
        }
        // A value under a key the schedule never mentions must survive.
        reference.load(NodeId(0), Key::tmp(99, 99), Nat(123));
        linked.load(NodeId(0), Key::tmp(99, 99), Nat(123));

        let s1 = reference.run(&s).unwrap();
        let s2 = linked.run().unwrap();
        assert_eq!(s1, s2, "stats must agree (elapsed excluded from eq)");
        for i in 0..n as u32 {
            assert_eq!(
                reference.snapshot(NodeId(i)),
                linked.snapshot(NodeId(i)),
                "node {i} stores diverge"
            );
        }
    }

    #[test]
    fn linked_parallel_matches_sequential() {
        let n = 13;
        let s = mixed_schedule(n);
        let l = LinkedSchedule::link(&s).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let mut seq: LinkedMachine<Nat> = LinkedMachine::new(&l);
            let mut par: LinkedMachine<Nat> = LinkedMachine::new(&l);
            for i in 0..n as u32 {
                for (key, v) in [
                    (Key::a(u64::from(i), 0), u64::from(i) + 1),
                    (Key::b(u64::from(i), 0), 3 * u64::from(i) + 2),
                ] {
                    seq.load(NodeId(i), key, Nat(v));
                    par.load(NodeId(i), key, Nat(v));
                }
            }
            let s1 = seq.run().unwrap();
            let s2 = par.run_parallel(threads).unwrap();
            assert_eq!(s1, s2);
            for i in 0..n as u32 {
                assert_eq!(
                    seq.snapshot(NodeId(i)),
                    par.snapshot(NodeId(i)),
                    "threads={threads} node={i}"
                );
            }
        }
    }

    #[test]
    fn block_mul_add_links_and_matches() {
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::BlockMulAdd {
            node: NodeId(0),
            dim: 2,
            a_ns: 10,
            b_ns: 11,
            c_ns: 12,
        }])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();
        assert_eq!(l.slots_at(NodeId(0)), 12, "3 blocks × dim²");

        let mut reference: Machine<Nat> = Machine::new(1);
        let mut linked: LinkedMachine<Nat> = LinkedMachine::new(&l);
        for (idx, v) in [1u64, 2, 3, 4].into_iter().enumerate() {
            reference.load(NodeId(0), Key::tmp(10, idx as u64), Nat(v));
            linked.load(NodeId(0), Key::tmp(10, idx as u64), Nat(v));
        }
        for (idx, v) in [5u64, 6, 7, 8].into_iter().enumerate() {
            reference.load(NodeId(0), Key::tmp(11, idx as u64), Nat(v));
            linked.load(NodeId(0), Key::tmp(11, idx as u64), Nat(v));
        }
        reference.load(NodeId(0), Key::tmp(12, 0), Nat(1));
        linked.load(NodeId(0), Key::tmp(12, 0), Nat(1));
        reference.run(&s).unwrap();
        linked.run().unwrap();
        assert_eq!(reference.snapshot(NodeId(0)), linked.snapshot(NodeId(0)));
        assert_eq!(linked.get(NodeId(0), Key::tmp(12, 0)), Some(&Nat(20)));
    }

    #[test]
    fn missing_value_error_matches_reference() {
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![xfer(
            0,
            Key::a(9, 9),
            1,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();
        let mut reference: Machine<Nat> = Machine::new(2);
        let mut linked: LinkedMachine<Nat> = LinkedMachine::new(&l);
        let e1 = reference.run(&s).unwrap_err();
        let e2 = linked.run().unwrap_err();
        assert_eq!(e1, e2, "identical MissingValue (node, key, step)");
    }

    #[test]
    fn sub_assign_requires_a_ring() {
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::SubAssign {
            node: NodeId(0),
            dst: Key::x(0, 0),
            src: Key::a(0, 0),
        }])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();
        let mut m: LinkedMachine<Nat> = LinkedMachine::new(&l);
        m.load(NodeId(0), Key::a(0, 0), Nat(3));
        assert!(matches!(m.run(), Err(ModelError::UnsupportedOp { .. })));
    }

    #[test]
    fn sharding_invariant_holds_for_awkward_sizes() {
        for n in [1usize, 2, 5, 13, 64, 100] {
            for threads in [1usize, 2, 3, 7, 16] {
                assert!(shard_invariant_holds(n, threads), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn slot_lookup_roundtrips() {
        let s = mixed_schedule(4);
        let l = LinkedSchedule::link(&s).unwrap();
        for node in 0..4u32 {
            for slot in 0..l.slots_at(NodeId(node)) as u32 {
                let key = l.key_of(NodeId(node), slot);
                assert_eq!(l.slot_of(NodeId(node), key), Some(slot));
            }
        }
        assert_eq!(l.slot_of(NodeId(0), Key::tmp(424242, 0)), None);
    }

    /// One packed run over `mixed_schedule` must leave every lane's store
    /// bit-identical to the scalar run of that lane's values — including a
    /// ragged tail lane that was never loaded (tail members stay zero and
    /// are simply ignored by the batch runner, but they must not perturb
    /// the live lanes).
    #[test]
    fn packed_lanes_match_scalar_runs() {
        const LANES: usize = 4;
        let n = 8;
        let s = mixed_schedule(n);
        let l = LinkedSchedule::link(&s).unwrap();

        let lane_value = |lane: u64, i: u64, which: u64| Nat(1 + lane * 31 + i * 7 + which);
        let live_lanes = LANES - 1; // leave lane 3 as a zero-padded tail

        let mut packed: PackedLinkedMachine<'_, Nat, LANES> = PackedLinkedMachine::new(&l);
        assert_eq!(packed.lanes(), LANES);
        let mut scalars: Vec<LinkedMachine<'_, Nat>> =
            (0..live_lanes).map(|_| LinkedMachine::new(&l)).collect();
        for lane in 0..live_lanes {
            for i in 0..n as u64 {
                for (key, which) in [(Key::a(i, 0), 0), (Key::b(i, 0), 1)] {
                    let v = lane_value(lane as u64, i, which);
                    packed.load_lane(NodeId(i as u32), key, lane, v);
                    scalars[lane].load(NodeId(i as u32), key, v);
                }
            }
        }

        let packed_stats = packed.run().unwrap();
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            let scalar_stats = scalar.run().unwrap();
            assert_eq!(packed_stats, scalar_stats, "lane {lane} stats");
            for i in 0..n as u32 {
                assert_eq!(
                    packed.snapshot_lane(NodeId(i), lane),
                    scalar.snapshot(NodeId(i)),
                    "lane {lane} node {i} stores diverge"
                );
            }
        }
        // The tail lane ran an all-zero member: every occupied plane reads
        // zero there, and nothing leaked across from the live lanes.
        for i in 0..n as u32 {
            for (_, v) in packed.snapshot_lane(NodeId(i), LANES - 1) {
                assert_eq!(v, Nat(0), "tail lane must stay zero");
            }
        }
    }

    /// Packed `BlockMulAdd` materializes the same side-table outputs per
    /// lane as the scalar kernel, lanes loaded with different blocks.
    #[test]
    fn packed_block_mul_add_matches_scalar_per_lane() {
        const LANES: usize = 4;
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::BlockMulAdd {
            node: NodeId(0),
            dim: 2,
            a_ns: 10,
            b_ns: 11,
            c_ns: 12,
        }])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();

        let mut packed: PackedLinkedMachine<'_, Nat, LANES> = PackedLinkedMachine::new(&l);
        let mut scalars: Vec<LinkedMachine<'_, Nat>> =
            (0..LANES).map(|_| LinkedMachine::new(&l)).collect();
        for lane in 0..LANES {
            for idx in 0..4u64 {
                // Lane 2 gets an all-zero A block to hit the zero-skip path
                // in some lanes while others stay live.
                let av = if lane == 2 { 0 } else { lane as u64 + idx + 1 };
                let bv = 2 * lane as u64 + idx + 5;
                packed.load_lane(NodeId(0), Key::tmp(10, idx), lane, Nat(av));
                packed.load_lane(NodeId(0), Key::tmp(11, idx), lane, Nat(bv));
                scalars[lane].load(NodeId(0), Key::tmp(10, idx), Nat(av));
                scalars[lane].load(NodeId(0), Key::tmp(11, idx), Nat(bv));
            }
        }
        packed.run().unwrap();
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            scalar.run().unwrap();
            assert_eq!(
                packed.snapshot_lane(NodeId(0), lane),
                scalar.snapshot(NodeId(0)),
                "lane {lane}"
            );
        }
    }

    /// Missing-value and unsupported-op errors surface identically from the
    /// packed executor (same node/key/step payloads as scalar).
    #[test]
    fn packed_error_parity_with_scalar() {
        // MissingValue on an unloaded transfer source.
        let mut b = ScheduleBuilder::new(2);
        b.round(vec![xfer(
            0,
            Key::a(9, 9),
            1,
            Key::tmp(0, 0),
            Merge::Overwrite,
        )])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();
        let mut scalar: LinkedMachine<Nat> = LinkedMachine::new(&l);
        let mut packed: PackedLinkedMachine<'_, Nat, 4> = PackedLinkedMachine::new(&l);
        assert_eq!(scalar.run().unwrap_err(), packed.run().unwrap_err());

        // SubAssign over a plain semiring.
        let mut b = ScheduleBuilder::new(1);
        b.compute(vec![LocalOp::SubAssign {
            node: NodeId(0),
            dst: Key::x(0, 0),
            src: Key::a(0, 0),
        }])
        .unwrap();
        let s = b.build();
        let l = LinkedSchedule::link(&s).unwrap();
        let mut packed: PackedLinkedMachine<'_, Nat, 4> = PackedLinkedMachine::new(&l);
        packed.load_lane(NodeId(0), Key::a(0, 0), 0, Nat(3));
        assert!(matches!(
            packed.run(),
            Err(ModelError::UnsupportedOp { .. })
        ));
    }

    /// `reset_values` empties every plane while keeping the layout, so a
    /// packed machine can serve lane-group after lane-group.
    #[test]
    fn packed_reset_values_clears_all_lanes() {
        let n = 4;
        let s = mixed_schedule(n);
        let l = LinkedSchedule::link(&s).unwrap();
        let mut packed: PackedLinkedMachine<'_, Nat, 4> = PackedLinkedMachine::new(&l);
        for lane in 0..4 {
            for i in 0..n as u64 {
                packed.load_lane(NodeId(i as u32), Key::a(i, 0), lane, Nat(lane as u64 + 1));
                packed.load_lane(NodeId(i as u32), Key::b(i, 0), lane, Nat(2));
            }
        }
        packed.run().unwrap();
        packed.reset_values();
        for i in 0..n as u32 {
            for lane in 0..4 {
                assert!(packed.snapshot_lane(NodeId(i), lane).is_empty());
            }
        }
        // And the machine is reusable after the reset.
        for lane in 0..4 {
            for i in 0..n as u64 {
                packed.load_lane(NodeId(i as u32), Key::a(i, 0), lane, Nat(9));
                packed.load_lane(NodeId(i as u32), Key::b(i, 0), lane, Nat(9));
            }
        }
        packed.run().unwrap();
    }

    /// In-flight corruption of one lane trips the per-lane checksum: the
    /// run fails with `Corruption { round }` and the tracer's
    /// `fault.detected.lane` event names the corrupted member.
    #[test]
    fn packed_fault_detection_localizes_lane() {
        struct CorruptRound0;
        impl FaultHook for CorruptRound0 {
            const ENABLED: bool = true;
            fn crash(&mut self, _round: usize) -> Option<u32> {
                None
            }
            fn tamper(&mut self, round: usize, src: u32) -> Tamper {
                if round == 0 && src == 0 {
                    Tamper::Corrupt
                } else {
                    Tamper::None
                }
            }
        }

        struct LaneRecorder(Vec<(String, u64)>);
        impl Tracer for LaneRecorder {
            const ENABLED: bool = true;
            fn span_enter(&mut self, _name: &'static str) {}
            fn span_exit(&mut self, _name: &'static str) {}
            fn counter(&mut self, _name: &'static str, _delta: u64) {}
            fn histogram(&mut self, _name: &'static str, _value: u64) {}
            fn fault(&mut self, what: &'static str, value: u64) {
                self.0.push((what.to_string(), value));
            }
        }

        const LANES: usize = 4;
        let n = 4;
        let s = mixed_schedule(n);
        let l = LinkedSchedule::link(&s).unwrap();
        let mut packed: PackedLinkedMachine<'_, Nat, LANES> = PackedLinkedMachine::new(&l);
        for lane in 0..LANES {
            for i in 0..n as u64 {
                packed.load_lane(NodeId(i as u32), Key::a(i, 0), lane, Nat(5));
                packed.load_lane(NodeId(i as u32), Key::b(i, 0), lane, Nat(6));
            }
        }
        let mut tracer = LaneRecorder(Vec::new());
        let mut stats = ExecutionStats::default();
        let err = packed
            .run_guarded(
                &mut tracer,
                &mut CorruptRound0,
                RunWindow::full(),
                &mut stats,
            )
            .unwrap_err();
        assert_eq!(err, ModelError::Corruption { round: 0 });
        // Round 0 corrupts lane 0 % LANES == 0.
        assert!(tracer
            .0
            .iter()
            .any(|(what, lane)| what == "fault.detected.lane" && *lane == 0));
    }
}
