//! Parallel schedule execution: a multithreaded [`crate::Machine`]-equivalent.
//!
//! The model is embarrassingly parallel within a round: every message has a
//! distinct receiver (up to `capacity`), and local compute touches only one
//! node's store. [`ParallelMachine`] exploits exactly that structure with
//! std scoped threads and **no locks on the hot path**:
//!
//! 1. **Read phase** — all payloads of a round are gathered against the
//!    immutable stores (shared `&` access across worker threads);
//! 2. **Write phase** — deliveries are sharded by destination node into
//!    contiguous node blocks, and each worker gets the `&mut` sub-slice of
//!    stores for its block (`split_at_mut`), so no two threads ever touch
//!    the same store;
//! 3. **Compute phase** — local ops are sharded by node the same way.
//!
//! The result is bit-identical to the sequential executor (asserted by
//! tests); the parallel engine exists for wall-clock speed on large
//! instances, not for semantics.

use std::collections::HashMap;
use std::time::Instant;

use lowband_faults::{mix64, FaultHook, NoopFaults, Tamper};
use lowband_trace::{NoopTracer, RoundEvent, Tracer};

use crate::recovery::{Checkpoint, RunWindow};
use crate::schedule::{LocalOp, Merge, Step};
use crate::{ExecutionStats, Key, ModelError, NodeId, Schedule, Semiring};

/// A network executor that runs round payload work across worker threads.
#[derive(Debug)]
pub struct ParallelMachine<V: Semiring> {
    stores: Vec<HashMap<Key, V>>,
    threads: usize,
}

/// One unit of store mutation, carrying its absolute node index.
enum WorkItem<V> {
    Deliver {
        node: usize,
        key: Key,
        merge: Merge,
        value: V,
    },
    Op(LocalOp),
}

impl<V> WorkItem<V> {
    fn node(&self) -> usize {
        match self {
            WorkItem::Deliver { node, .. } => *node,
            WorkItem::Op(op) => op.node().index(),
        }
    }
}

/// Shard id for a node: contiguous blocks keep cache locality.
pub(crate) fn shard_of(node: usize, n: usize, threads: usize) -> usize {
    node * threads / n.max(1)
}

/// First item of each shard (length `threads + 1`; shard `s` owns
/// `bounds[s]..bounds[s+1]`). Public because the same contiguous-block
/// partition shards nodes across executor workers *and* value-sets across
/// batch workers (`lowband-core`'s parallel batch mode) *and* connections
/// across `lowband-served`'s daemon workers.
///
/// Degenerate shapes are well defined: `threads > n` yields `threads - n`
/// empty trailing shards (never out-of-bounds), and `threads == 0` yields
/// the zero-shard partition `[0]` — no shard owns anything, so a caller
/// with `n > 0` items must reject zero workers up front (the batch
/// executors raise [`ModelError::ZeroWorkers`]).
pub fn shard_bounds(n: usize, threads: usize) -> Vec<usize> {
    if threads == 0 {
        return vec![0];
    }
    let mut bounds = vec![n; threads + 1];
    bounds[0] = 0;
    let mut cur = 0usize;
    for node in 0..n {
        let s = shard_of(node, n, threads);
        while cur < s {
            cur += 1;
            bounds[cur] = node;
        }
    }
    while cur < threads {
        cur += 1;
        bounds[cur] = n;
    }
    bounds[threads] = n;
    bounds
}

fn apply_item<V: Semiring>(
    store: &mut HashMap<Key, V>,
    item: WorkItem<V>,
    step: usize,
) -> Result<(), ModelError> {
    match item {
        WorkItem::Deliver {
            key, merge, value, ..
        } => {
            match merge {
                Merge::Overwrite => {
                    store.insert(key, value);
                }
                Merge::Add => {
                    let entry = store.entry(key).or_insert_with(V::zero);
                    *entry = entry.add(&value);
                }
            }
            Ok(())
        }
        WorkItem::Op(op) => match op {
            LocalOp::Mul {
                node,
                dst,
                lhs,
                rhs,
            } => {
                let a = store.get(&lhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: lhs,
                    step,
                })?;
                let b = store.get(&rhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: rhs,
                    step,
                })?;
                store.insert(dst, a.mul(&b));
                Ok(())
            }
            LocalOp::MulAdd {
                node,
                dst,
                lhs,
                rhs,
            } => {
                let a = store.get(&lhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: lhs,
                    step,
                })?;
                let b = store.get(&rhs).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: rhs,
                    step,
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&a.mul(&b));
                Ok(())
            }
            LocalOp::AddAssign { node, dst, src } => {
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&s);
                Ok(())
            }
            LocalOp::SubAssign { node, dst, src } => {
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                let negated = s.try_neg().ok_or(ModelError::UnsupportedOp {
                    node,
                    step,
                    what: "additive inverses (a ring)",
                })?;
                let entry = store.entry(dst).or_insert_with(V::zero);
                *entry = entry.add(&negated);
                Ok(())
            }
            LocalOp::BlockMulAdd {
                dim,
                a_ns,
                b_ns,
                c_ns,
                ..
            } => {
                crate::machine::block_mul_add(store, dim as usize, a_ns, b_ns, c_ns);
                Ok(())
            }
            LocalOp::Copy { node, dst, src } => {
                let s = store.get(&src).cloned().ok_or(ModelError::MissingValue {
                    node,
                    key: src,
                    step,
                })?;
                store.insert(dst, s);
                Ok(())
            }
            LocalOp::Zero { dst, .. } => {
                store.insert(dst, V::zero());
                Ok(())
            }
            LocalOp::Free { key, .. } => {
                store.remove(&key);
                Ok(())
            }
        },
    }
}

impl<V: Semiring> ParallelMachine<V> {
    /// Create a parallel machine with `n` computers; `threads = 0` selects
    /// the available parallelism.
    pub fn new(n: usize, threads: usize) -> ParallelMachine<V> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n.max(1));
        ParallelMachine {
            stores: vec![HashMap::new(); n],
            threads,
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.stores.len()
    }

    /// Worker count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Place `value` under `key` at `node`.
    pub fn load(&mut self, node: NodeId, key: Key, value: V) {
        self.stores[node.index()].insert(key, value);
    }

    /// Read the value under `key` at `node`, if present.
    pub fn get(&self, node: NodeId, key: Key) -> Option<&V> {
        self.stores[node.index()].get(&key)
    }

    /// Read the value under `key` at `node`, or zero.
    pub fn get_or_zero(&self, node: NodeId, key: Key) -> V {
        self.get(node, key).cloned().unwrap_or_else(V::zero)
    }

    /// Shard the items by node block and apply them on worker threads, each
    /// owning a disjoint `&mut` block of stores.
    fn sharded_apply(
        &mut self,
        mut sharded: Vec<Vec<WorkItem<V>>>,
        step: usize,
    ) -> Result<(), ModelError> {
        let n = self.n();
        let threads = self.threads;
        let bounds = shard_bounds(n, threads);
        let results: Vec<Result<(), ModelError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut rest: &mut [HashMap<Key, V>] = &mut self.stores;
            for (s, items) in sharded.drain(..).enumerate() {
                let take = bounds[s + 1] - bounds[s];
                let (block, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = bounds[s];
                handles.push(scope.spawn(move || {
                    for item in items {
                        let rel = item.node() - base;
                        apply_item(&mut block[rel], item, step)?;
                    }
                    Ok(())
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // A worker that panicked (e.g. a value type whose
                    // arithmetic panics) must surface as a typed error the
                    // resilient driver can retry, never abort the process.
                    h.join().unwrap_or(Err(ModelError::WorkerPanicked { step }))
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Execute a schedule in parallel; final stores are identical to the
    /// sequential [`crate::Machine`].
    pub fn run(&mut self, schedule: &Schedule) -> Result<ExecutionStats, ModelError> {
        self.run_traced(schedule, &mut NoopTracer)
    }

    /// [`ParallelMachine::run`] with an instrumentation sink; same event
    /// stream as [`crate::Machine::run_traced`] (one [`RoundEvent`] per
    /// round, `run.local_ops` per compute step, per-node loads at the
    /// end). With [`NoopTracer`] this compiles to exactly
    /// [`ParallelMachine::run`].
    pub fn run_traced<T: Tracer>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
    ) -> Result<ExecutionStats, ModelError> {
        let mut stats = ExecutionStats::default();
        self.run_guarded(
            schedule,
            tracer,
            &mut NoopFaults,
            RunWindow::full(),
            &mut stats,
        )?;
        Ok(stats)
    }

    /// Fault-guarded, windowed variant of [`ParallelMachine::run_traced`];
    /// same contract as [`crate::Machine::run_guarded`]. Fault decisions are
    /// made in the sequential shard-assembly loop (schedule transfer order),
    /// so a given plan injects the **same faults** here as on the
    /// sequential executor.
    pub fn run_guarded<T: Tracer, F: FaultHook>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        if schedule.n() != self.n() {
            return Err(ModelError::SizeMismatch {
                expected: schedule.n(),
                actual: self.n(),
            });
        }
        let start = Instant::now();
        let result = self.run_window(schedule, tracer, faults, window, stats);
        stats.elapsed += start.elapsed();
        result
    }

    fn run_window<T: Tracer, F: FaultHook>(
        &mut self,
        schedule: &Schedule,
        tracer: &mut T,
        faults: &mut F,
        window: RunWindow,
        stats: &mut ExecutionStats,
    ) -> Result<Option<usize>, ModelError> {
        let n = self.n();
        let threads = self.threads;
        let cap = schedule.capacity() as u32;
        let mut send_count = vec![0u32; n];
        let mut recv_count = vec![0u32; n];
        let (mut node_sends, mut node_recvs) = if T::ENABLED {
            (vec![0u64; n], vec![0u64; n])
        } else {
            (Vec::new(), Vec::new())
        };
        let mut ops_since_round = 0u64;
        let mut window_rounds = 0usize;
        let steps = schedule.steps();
        let first = window.start_step.min(steps.len());

        for (offset, step) in steps[first..].iter().enumerate() {
            let step_idx = first + offset;
            match step {
                Step::Comm(round) => {
                    // The window budget binds on every run, fault hook or
                    // not (see `crate::Machine::run_window`).
                    if window_rounds == window.max_rounds {
                        if T::ENABLED {
                            tracer.node_loads(&node_sends, &node_recvs);
                        }
                        return Ok(Some(step_idx));
                    }
                    window_rounds += 1;
                    if F::ENABLED {
                        if let Some(victim) = faults.crash(stats.rounds) {
                            let victim = NodeId(victim);
                            if victim.index() < n {
                                if T::ENABLED {
                                    tracer.fault("fault.injected.crash", stats.rounds as u64);
                                }
                                self.stores[victim.index()].clear();
                                return Err(ModelError::NodeCrashed {
                                    node: victim,
                                    round: stats.rounds,
                                });
                            }
                        }
                    }
                    let round_start = if T::ENABLED {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    // Validation (sequential; cheap).
                    send_count.iter_mut().for_each(|c| *c = 0);
                    recv_count.iter_mut().for_each(|c| *c = 0);
                    for t in &round.transfers {
                        for node in [t.src, t.dst] {
                            if node.index() >= n {
                                return Err(ModelError::NodeOutOfRange { node, n });
                            }
                        }
                        send_count[t.src.index()] += 1;
                        if send_count[t.src.index()] > cap {
                            return Err(ModelError::SendConflict {
                                round: stats.rounds,
                                node: t.src,
                            });
                        }
                        recv_count[t.dst.index()] += 1;
                        if recv_count[t.dst.index()] > cap {
                            return Err(ModelError::ReceiveConflict {
                                round: stats.rounds,
                                node: t.dst,
                            });
                        }
                        if T::ENABLED {
                            node_sends[t.src.index()] += 1;
                            node_recvs[t.dst.index()] += 1;
                        }
                    }

                    // Read phase (parallel, immutable stores).
                    let stores = &self.stores;
                    let transfers = &round.transfers;
                    let chunk = transfers.len().div_ceil(threads).max(1);
                    let payloads: Vec<Result<V, ModelError>> = std::thread::scope(|scope| {
                        let handles: Vec<_> = transfers
                            .chunks(chunk)
                            .map(|ts| {
                                scope.spawn(move || {
                                    ts.iter()
                                        .map(|t| {
                                            stores[t.src.index()].get(&t.src_key).cloned().ok_or(
                                                ModelError::MissingValue {
                                                    node: t.src,
                                                    key: t.src_key,
                                                    step: step_idx,
                                                },
                                            )
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        // Join every handle (an unjoined panicked thread
                        // would re-panic when the scope exits); if any
                        // reader panicked, poison the whole round with a
                        // typed error (the zip below stops at the first Err).
                        let mut out = Vec::with_capacity(transfers.len());
                        let mut panicked = false;
                        for h in handles {
                            match h.join() {
                                Ok(part) => out.extend(part),
                                Err(_) => panicked = true,
                            }
                        }
                        if panicked {
                            out.clear();
                            out.resize_with(transfers.len(), || {
                                Err(ModelError::WorkerPanicked { step: step_idx })
                            });
                        }
                        out
                    });

                    // Write phase (parallel, sharded by destination). Fault
                    // decisions happen in this sequential loop, which walks
                    // the transfers in schedule order; the commutative
                    // checksums mirror the sequential executor's.
                    let (mut sent_sum, mut recv_sum) = (0u64, 0u64);
                    let mut sharded: Vec<Vec<WorkItem<V>>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    for (t, payload) in transfers.iter().zip(payloads) {
                        let mut value = payload?;
                        if F::ENABLED {
                            sent_sum = sent_sum.wrapping_add(mix64(value.digest()));
                            match faults.tamper(stats.rounds, t.src.0) {
                                Tamper::None => {}
                                Tamper::Drop => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.drop", stats.rounds as u64);
                                    }
                                    continue;
                                }
                                Tamper::Corrupt => {
                                    if T::ENABLED {
                                        tracer.fault("fault.injected.corrupt", stats.rounds as u64);
                                    }
                                    value = value.corrupted();
                                }
                            }
                            recv_sum = recv_sum.wrapping_add(mix64(value.digest()));
                        }
                        sharded[shard_of(t.dst.index(), n, threads)].push(WorkItem::Deliver {
                            node: t.dst.index(),
                            key: t.dst_key,
                            merge: t.merge,
                            value,
                        });
                    }
                    self.sharded_apply(sharded, step_idx)?;
                    if F::ENABLED && sent_sum != recv_sum {
                        if T::ENABLED {
                            tracer.fault("fault.detected", stats.rounds as u64);
                        }
                        return Err(ModelError::Corruption {
                            round: stats.rounds,
                        });
                    }

                    stats.record_round(round.transfers.len());
                    if T::ENABLED {
                        tracer.round(RoundEvent {
                            index: (stats.rounds - 1) as u64,
                            messages: round.transfers.len() as u64,
                            local_ops: ops_since_round,
                            nanos: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        });
                        ops_since_round = 0;
                    }
                }
                Step::Compute(ops) => {
                    let mut sharded: Vec<Vec<WorkItem<V>>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    for op in ops {
                        let node = op.node();
                        if node.index() >= n {
                            return Err(ModelError::NodeOutOfRange { node, n });
                        }
                        sharded[shard_of(node.index(), n, threads)].push(WorkItem::Op(*op));
                    }
                    self.sharded_apply(sharded, step_idx)?;
                    stats.local_ops += ops.len();
                    tracer.counter("run.local_ops", ops.len() as u64);
                    if T::ENABLED {
                        ops_since_round += ops.len() as u64;
                    }
                }
            }
        }
        if T::ENABLED {
            tracer.node_loads(&node_sends, &node_recvs);
        }
        Ok(None)
    }

    /// Clone of the full key–value store at `node` (for equivalence tests
    /// and output extraction).
    pub fn snapshot(&self, node: NodeId) -> HashMap<Key, V> {
        self.stores[node.index()].clone()
    }

    /// Snapshot machine state into an executor-independent [`Checkpoint`].
    pub fn checkpoint(&self, next_step: usize, stats: ExecutionStats) -> Checkpoint<V> {
        Checkpoint::new(next_step, stats, self.stores.clone())
    }

    /// Restore every store from a [`Checkpoint`] taken on any executor
    /// backend of the same network size.
    pub fn restore(&mut self, ckpt: &Checkpoint<V>) -> Result<(), ModelError> {
        if ckpt.n() != self.n() {
            return Err(ModelError::SizeMismatch {
                expected: ckpt.n(),
                actual: self.n(),
            });
        }
        for (store, saved) in self.stores.iter_mut().zip(ckpt.stores()) {
            store.clone_from(saved);
        }
        Ok(())
    }

    /// Clear every store, returning the machine to its freshly-constructed
    /// state.
    pub fn reset(&mut self) {
        for store in &mut self.stores {
            store.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;
    use crate::{Machine, ScheduleBuilder, Transfer};

    #[test]
    fn shard_bounds_zero_threads_is_the_empty_partition() {
        for n in [0usize, 1, 5, 100] {
            assert_eq!(shard_bounds(n, 0), vec![0], "n={n}");
        }
    }

    #[test]
    fn shard_bounds_with_more_threads_than_nodes_has_empty_tail_shards() {
        for (n, threads) in [(0usize, 4usize), (1, 8), (3, 7), (5, 64)] {
            let bounds = shard_bounds(n, threads);
            assert_eq!(bounds.len(), threads + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[threads], n);
            for s in 0..threads {
                assert!(
                    bounds[s] <= bounds[s + 1] && bounds[s + 1] <= n,
                    "n={n} t={threads} shard={s} bounds={bounds:?}"
                );
            }
            let owned: usize = (0..threads).map(|s| bounds[s + 1] - bounds[s]).sum();
            assert_eq!(owned, n, "every node owned exactly once");
        }
    }

    #[test]
    fn shard_bounds_partition_the_nodes() {
        for (n, threads) in [(10usize, 3usize), (7, 7), (16, 4), (5, 1), (1, 1)] {
            let bounds = shard_bounds(n, threads);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[threads], n);
            for node in 0..n {
                let s = shard_of(node, n, threads);
                assert!(
                    bounds[s] <= node && node < bounds[s + 1],
                    "n={n} t={threads} node={node} shard={s} bounds={bounds:?}"
                );
            }
        }
    }

    fn exchange_schedule(n: usize) -> crate::Schedule {
        // Every node sends its value one step right, with an Add into a
        // shared accumulator and a compute op on top.
        let mut b = ScheduleBuilder::new(n);
        for round in 0..3 {
            let transfers = (0..n as u32)
                .map(|i| Transfer {
                    src: NodeId(i),
                    src_key: Key::tmp(0, 0),
                    dst: NodeId((i + 1 + round) % n as u32),
                    dst_key: Key::x(0, 0),
                    merge: Merge::Add,
                })
                .collect();
            b.round(transfers).unwrap();
        }
        let ops = (0..n as u32)
            .map(|i| LocalOp::MulAdd {
                node: NodeId(i),
                dst: Key::x(1, 1),
                lhs: Key::tmp(0, 0),
                rhs: Key::x(0, 0),
            })
            .collect();
        b.compute(ops).unwrap();
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        for threads in [1usize, 2, 3, 8] {
            let n = 13;
            let s = exchange_schedule(n);
            let mut seq: Machine<Nat> = Machine::new(n);
            let mut par: ParallelMachine<Nat> = ParallelMachine::new(n, threads);
            for i in 0..n as u32 {
                seq.load(NodeId(i), Key::tmp(0, 0), Nat(u64::from(i) + 1));
                par.load(NodeId(i), Key::tmp(0, 0), Nat(u64::from(i) + 1));
            }
            let s1 = seq.run(&s).unwrap();
            let s2 = par.run(&s).unwrap();
            assert_eq!(s1, s2, "stats must agree");
            for i in 0..n as u32 {
                for key in [Key::tmp(0, 0), Key::x(0, 0), Key::x(1, 1)] {
                    assert_eq!(
                        seq.get(NodeId(i), key),
                        par.get(NodeId(i), key),
                        "threads={threads} node={i} key={key:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_enforces_constraints_too() {
        let n = 4;
        let mut b = ScheduleBuilder::with_capacity(n, 2);
        b.round(vec![
            Transfer {
                src: NodeId(0),
                src_key: Key::tmp(0, 0),
                dst: NodeId(1),
                dst_key: Key::tmp(0, 1),
                merge: Merge::Overwrite,
            },
            Transfer {
                src: NodeId(0),
                src_key: Key::tmp(0, 0),
                dst: NodeId(2),
                dst_key: Key::tmp(0, 1),
                merge: Merge::Overwrite,
            },
        ])
        .unwrap();
        let s = b.build();
        // Capacity-2 schedule on the parallel machine: fine.
        let mut par: ParallelMachine<Nat> = ParallelMachine::new(n, 2);
        par.load(NodeId(0), Key::tmp(0, 0), Nat(1));
        par.run(&s).unwrap();
        // Missing value surfaces as an error, not a crash.
        let mut empty: ParallelMachine<Nat> = ParallelMachine::new(n, 2);
        assert!(matches!(
            empty.run(&s),
            Err(ModelError::MissingValue { .. })
        ));
    }

    #[test]
    fn thread_count_is_clamped() {
        let m: ParallelMachine<Nat> = ParallelMachine::new(3, 64);
        assert_eq!(m.threads(), 3, "never more threads than nodes");
        let m: ParallelMachine<Nat> = ParallelMachine::new(8, 0);
        assert!(m.threads() >= 1);
    }
}
