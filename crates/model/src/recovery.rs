//! Checkpoint/restore support for windowed, fault-guarded execution.
//!
//! Runs driven by a real [`FaultHook`](lowband_faults::FaultHook) execute
//! in **windows** of at most `k` rounds ([`RunWindow`]); at each window
//! boundary the driver snapshots machine state into a [`Checkpoint`]. When
//! a fault surfaces (a round checksum mismatch or a node crash), the driver
//! restores the last checkpoint and replays from there — the plan's
//! one-shot faults guarantee progress.
//!
//! A checkpoint stores the **canonical hash-map representation** of every
//! node's store (the same shape `snapshot` returns on all three executor
//! backends), plus the step cursor and the statistics accumulated so far.
//! That makes checkpoints executor-independent: a checkpoint taken on the
//! hash-map machine restores bit-for-bit onto the linked machine and vice
//! versa, because `next_step` indexes the schedule's step list and linking
//! preserves step positions one-to-one.

use std::collections::HashMap;

use crate::{ExecutionStats, Key, Semiring};

/// The step range and round budget of one execution window.
#[derive(Clone, Copy, Debug)]
pub struct RunWindow {
    /// First schedule step to execute (0 for a fresh run; a checkpoint's
    /// `next_step` when resuming).
    pub start_step: usize,
    /// Stop *before* the communication step that would begin round
    /// `max_rounds + 1` of this window, returning the resume cursor.
    /// `usize::MAX` runs to completion. The budget binds on **every** run,
    /// with or without a fault hook: a windowed plain run (e.g.
    /// [`NoopFaults`](lowband_faults::NoopFaults)) stops at the boundary
    /// and returns `Ok(Some(step))` exactly like a guarded one.
    pub max_rounds: usize,
}

impl RunWindow {
    /// The whole schedule in one window (no checkpoint boundary).
    pub fn full() -> RunWindow {
        RunWindow {
            start_step: 0,
            max_rounds: usize::MAX,
        }
    }

    /// Resume at `start_step`, stopping after at most `max_rounds` rounds.
    pub fn new(start_step: usize, max_rounds: usize) -> RunWindow {
        RunWindow {
            start_step,
            max_rounds,
        }
    }
}

/// A restorable snapshot of executor state at a step boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint<V: Semiring> {
    next_step: usize,
    stats: ExecutionStats,
    stores: Vec<HashMap<Key, V>>,
}

impl<V: Semiring> Checkpoint<V> {
    /// Assemble a checkpoint from its parts. Executors call this from
    /// their `checkpoint` methods; drivers normally never construct one
    /// directly.
    pub fn new(
        next_step: usize,
        stats: ExecutionStats,
        stores: Vec<HashMap<Key, V>>,
    ) -> Checkpoint<V> {
        Checkpoint {
            next_step,
            stats,
            stores,
        }
    }

    /// Network size the checkpoint was taken on.
    pub fn n(&self) -> usize {
        self.stores.len()
    }

    /// The schedule step execution resumes at.
    pub fn next_step(&self) -> usize {
        self.next_step
    }

    /// Statistics accumulated up to the checkpoint.
    pub fn stats(&self) -> ExecutionStats {
        self.stats
    }

    /// Per-node stores in canonical hash-map form.
    pub fn stores(&self) -> &[HashMap<Key, V>] {
        &self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Nat;

    #[test]
    fn checkpoint_accessors_roundtrip() {
        let mut store = HashMap::new();
        store.insert(Key::a(0, 0), Nat(7));
        let stats = ExecutionStats {
            rounds: 3,
            ..Default::default()
        };
        let ckpt = Checkpoint::new(5, stats, vec![store, HashMap::new()]);
        assert_eq!(ckpt.n(), 2);
        assert_eq!(ckpt.next_step(), 5);
        assert_eq!(ckpt.stats().rounds, 3);
        assert_eq!(ckpt.stores()[0].get(&Key::a(0, 0)), Some(&Nat(7)));
    }

    #[test]
    fn full_window_runs_everything() {
        let w = RunWindow::full();
        assert_eq!(w.start_step, 0);
        assert_eq!(w.max_rounds, usize::MAX);
        let w = RunWindow::new(4, 8);
        assert_eq!((w.start_step, w.max_rounds), (4, 8));
    }
}
