//! Schedules: the compiled form of a low-bandwidth algorithm.
//!
//! In the supported model, the communication pattern of an algorithm is a
//! function of the instance *structure* only. A [`Schedule`] is that
//! pattern, made explicit: an alternating sequence of communication
//! [`Round`]s (each a set of [`Transfer`]s obeying the one-send/one-receive
//! constraint) and blocks of free [`LocalOp`]s.
//!
//! The round count of the schedule — [`Schedule::rounds`] — is the paper's
//! complexity measure.

use crate::{Key, ModelError, NodeId};

/// How an arriving message is combined with the destination key's current
/// value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Merge {
    /// Destination key is set to the payload, replacing any previous value.
    Overwrite,
    /// Payload is semiring-added into the destination key (treated as zero
    /// if absent). This models the "accumulate into `X_ik`" pattern.
    Add,
}

/// One message: `dst.dst_key ← merge(dst.dst_key, src.src_key)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// Sending computer.
    pub src: NodeId,
    /// Key read at the sender (the sender keeps its copy; messages copy).
    pub src_key: Key,
    /// Receiving computer.
    pub dst: NodeId,
    /// Key written at the receiver.
    pub dst_key: Key,
    /// Combination rule at the receiver.
    pub merge: Merge,
}

/// One synchronous communication round: a set of transfers in which every
/// node sends at most once and receives at most once.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Round {
    /// The messages of this round.
    pub transfers: Vec<Transfer>,
}

/// A zero-cost local computation executed by one node between rounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalOp {
    /// `dst ← lhs · rhs` (semiring multiplication of two local values).
    Mul {
        /// Node performing the multiplication.
        node: NodeId,
        /// Key written.
        dst: Key,
        /// Left factor key.
        lhs: Key,
        /// Right factor key.
        rhs: Key,
    },
    /// `dst ← dst + src` (semiring addition; `dst` starts at zero if absent).
    AddAssign {
        /// Node performing the addition.
        node: NodeId,
        /// Accumulator key.
        dst: Key,
        /// Added key.
        src: Key,
    },
    /// `dst ← dst + lhs · rhs` (fused multiply-accumulate; `dst` starts at
    /// zero if absent). The workhorse of triangle processing — one op per
    /// triangle instead of a `Mul` + `AddAssign` pair.
    MulAdd {
        /// Node performing the operation.
        node: NodeId,
        /// Accumulator key.
        dst: Key,
        /// Left factor key.
        lhs: Key,
        /// Right factor key.
        rhs: Key,
    },
    /// `dst ← dst − src` (ring subtraction; `dst` starts at zero if
    /// absent). Requires the value type to provide additive inverses
    /// ([`crate::Semiring::try_neg`]); executing it over a plain semiring
    /// is a runtime error. Used by the Strassen field schedules.
    SubAssign {
        /// Node performing the subtraction.
        node: NodeId,
        /// Accumulator key.
        dst: Key,
        /// Subtracted key.
        src: Key,
    },
    /// Dense block multiply-accumulate, entirely node-local:
    /// `C[r,c] += Σ_q A[r,q] · B[q,c]` for `r, c, q < dim`, where a block
    /// entry `(r, c)` lives under `Key::tmp(ns, r·dim + c)` and missing
    /// entries read as zero. One op replaces `dim³` scalar [`LocalOp::MulAdd`]s —
    /// the local kernel of the Strassen leaves (local computation is free in
    /// the model either way; this keeps compiled schedules compact).
    BlockMulAdd {
        /// Node performing the block product.
        node: NodeId,
        /// Block dimension.
        dim: u32,
        /// Namespace of the `A` block.
        a_ns: u64,
        /// Namespace of the `B` block.
        b_ns: u64,
        /// Namespace of the accumulated `C` block.
        c_ns: u64,
    },
    /// `dst ← src` (local copy / rename).
    Copy {
        /// Node performing the copy.
        node: NodeId,
        /// Key written.
        dst: Key,
        /// Key read.
        src: Key,
    },
    /// `dst ← 0`.
    Zero {
        /// Node performing the initialization.
        node: NodeId,
        /// Key written.
        dst: Key,
    },
    /// Remove `key` from the node's store (bookkeeping only).
    Free {
        /// Node whose store is modified.
        node: NodeId,
        /// Key removed.
        key: Key,
    },
}

impl LocalOp {
    /// The node this op runs on.
    pub fn node(&self) -> NodeId {
        match *self {
            LocalOp::Mul { node, .. }
            | LocalOp::AddAssign { node, .. }
            | LocalOp::MulAdd { node, .. }
            | LocalOp::SubAssign { node, .. }
            | LocalOp::BlockMulAdd { node, .. }
            | LocalOp::Copy { node, .. }
            | LocalOp::Zero { node, .. }
            | LocalOp::Free { node, .. } => node,
        }
    }
}

/// One step of a schedule: either a communication round (costs 1 round) or a
/// block of local ops (costs 0 rounds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// A communication round.
    Comm(Round),
    /// A block of free local computation.
    Compute(Vec<LocalOp>),
}

/// A compiled low-bandwidth program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    n: usize,
    steps: Vec<Step>,
    rounds: usize,
    messages: usize,
    capacity: usize,
}

impl Schedule {
    /// Network size this schedule was compiled for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-round send/receive capacity this schedule was compiled for
    /// (1 = the low-bandwidth model; `O(log n)` = the node-capacitated
    /// clique of §1.5).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of communication rounds — the paper's cost measure.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total number of messages across all rounds.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Concatenate another schedule after this one (both must be compiled
    /// for the same `n`).
    pub fn chain(mut self, other: Schedule) -> Result<Schedule, ModelError> {
        if self.n != other.n || self.capacity != other.capacity {
            return Err(ModelError::SizeMismatch {
                expected: self.n,
                actual: other.n,
            });
        }
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.steps.extend(other.steps);
        Ok(self)
    }
}

/// Incremental builder for a [`Schedule`]; validates the bandwidth
/// constraint as rounds are added.
#[derive(Clone, Debug)]
pub struct ScheduleBuilder {
    n: usize,
    capacity: usize,
    steps: Vec<Step>,
    rounds: usize,
    messages: usize,
    /// Scratch stamps/counters reused across `round` calls to validate
    /// constraints in O(transfers) without per-call allocation.
    send_stamp: Vec<u32>,
    recv_stamp: Vec<u32>,
    send_count: Vec<u32>,
    recv_count: Vec<u32>,
    stamp: u32,
}

impl ScheduleBuilder {
    /// Start building a schedule for a network of `n` computers in the
    /// low-bandwidth model (capacity 1).
    pub fn new(n: usize) -> ScheduleBuilder {
        ScheduleBuilder::with_capacity(n, 1)
    }

    /// Start building with per-round send/receive capacity `capacity ≥ 1` —
    /// the node-capacitated clique generalization of §1.5 (`capacity =
    /// O(log n)` there; `capacity = 1` is the low-bandwidth model).
    pub fn with_capacity(n: usize, capacity: usize) -> ScheduleBuilder {
        assert!(capacity >= 1, "capacity must be at least 1");
        ScheduleBuilder {
            n,
            capacity,
            steps: Vec::new(),
            rounds: 0,
            messages: 0,
            send_stamp: vec![0; n],
            recv_stamp: vec![0; n],
            send_count: vec![0; n],
            recv_count: vec![0; n],
            stamp: 0,
        }
    }

    /// The per-round capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds added so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Messages added so far.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Append one communication round. Fails if any node would send or
    /// receive more than `capacity` messages, or a node index is out of
    /// range.
    pub fn round(&mut self, transfers: Vec<Transfer>) -> Result<(), ModelError> {
        self.stamp += 1;
        let stamp = self.stamp;
        let cap = self.capacity as u32;
        for t in &transfers {
            for node in [t.src, t.dst] {
                if node.index() >= self.n {
                    return Err(ModelError::NodeOutOfRange { node, n: self.n });
                }
            }
            let si = t.src.index();
            if self.send_stamp[si] != stamp {
                self.send_stamp[si] = stamp;
                self.send_count[si] = 0;
            }
            self.send_count[si] += 1;
            if self.send_count[si] > cap {
                return Err(ModelError::SendConflict {
                    round: self.rounds,
                    node: t.src,
                });
            }
            let di = t.dst.index();
            if self.recv_stamp[di] != stamp {
                self.recv_stamp[di] = stamp;
                self.recv_count[di] = 0;
            }
            self.recv_count[di] += 1;
            if self.recv_count[di] > cap {
                return Err(ModelError::ReceiveConflict {
                    round: self.rounds,
                    node: t.dst,
                });
            }
        }
        self.rounds += 1;
        self.messages += transfers.len();
        self.steps.push(Step::Comm(Round { transfers }));
        Ok(())
    }

    /// Append a block of free local computation.
    pub fn compute(&mut self, ops: Vec<LocalOp>) -> Result<(), ModelError> {
        for op in &ops {
            let node = op.node();
            if node.index() >= self.n {
                return Err(ModelError::NodeOutOfRange { node, n: self.n });
            }
        }
        if !ops.is_empty() {
            self.steps.push(Step::Compute(ops));
        }
        Ok(())
    }

    /// Append every step of an already-built schedule.
    pub fn extend(&mut self, other: &Schedule) -> Result<(), ModelError> {
        if other.n() != self.n || other.capacity() != self.capacity {
            return Err(ModelError::SizeMismatch {
                expected: self.n,
                actual: other.n(),
            });
        }
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.steps.extend(other.steps.iter().cloned());
        Ok(())
    }

    /// Finish building.
    pub fn build(self) -> Schedule {
        Schedule {
            n: self.n,
            steps: self.steps,
            rounds: self.rounds,
            messages: self.messages,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: u32, dst: u32) -> Transfer {
        Transfer {
            src: NodeId(src),
            src_key: Key::tmp(0, 0),
            dst: NodeId(dst),
            dst_key: Key::tmp(0, 1),
            merge: Merge::Overwrite,
        }
    }

    #[test]
    fn valid_round_accepted() {
        let mut b = ScheduleBuilder::new(4);
        b.round(vec![t(0, 1), t(2, 3)]).unwrap();
        // A node may send and receive in the same round.
        b.round(vec![t(0, 1), t(1, 0)]).unwrap();
        let s = b.build();
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.messages(), 4);
    }

    #[test]
    fn double_send_rejected() {
        let mut b = ScheduleBuilder::new(4);
        let err = b.round(vec![t(0, 1), t(0, 2)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::SendConflict {
                round: 0,
                node: NodeId(0)
            }
        );
    }

    #[test]
    fn double_receive_rejected() {
        let mut b = ScheduleBuilder::new(4);
        let err = b.round(vec![t(0, 3), t(1, 3)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::ReceiveConflict {
                round: 0,
                node: NodeId(3)
            }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = ScheduleBuilder::new(2);
        assert!(matches!(
            b.round(vec![t(0, 5)]),
            Err(ModelError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.compute(vec![LocalOp::Zero {
                node: NodeId(9),
                dst: Key::x(0, 0)
            }]),
            Err(ModelError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejected_round_does_not_count() {
        let mut b = ScheduleBuilder::new(4);
        let _ = b.round(vec![t(0, 1), t(0, 2)]);
        b.round(vec![t(0, 1)]).unwrap();
        let s = b.build();
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.messages(), 1);
    }

    #[test]
    fn capacity_allows_multiple_messages_per_round() {
        // Node-capacitated clique mode: capacity 2 admits two sends from
        // one node in one round, but not three.
        let mut b = ScheduleBuilder::with_capacity(4, 2);
        b.round(vec![t(0, 1), t(0, 2)]).unwrap();
        let err = b.round(vec![t(0, 1), t(0, 2), t(0, 3)]).unwrap_err();
        assert!(matches!(err, ModelError::SendConflict { .. }));
        let err = b.round(vec![t(0, 3), t(1, 3), t(2, 3)]).unwrap_err();
        assert!(matches!(err, ModelError::ReceiveConflict { .. }));
        let s = b.build();
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.rounds(), 1, "failed rounds are not recorded");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ScheduleBuilder::with_capacity(2, 0);
    }

    #[test]
    fn chain_requires_matching_capacity() {
        let a = ScheduleBuilder::with_capacity(4, 1).build();
        let b = ScheduleBuilder::with_capacity(4, 2).build();
        assert!(matches!(a.chain(b), Err(ModelError::SizeMismatch { .. })));
    }

    #[test]
    fn chain_concatenates_costs() {
        let mut b1 = ScheduleBuilder::new(4);
        b1.round(vec![t(0, 1)]).unwrap();
        let mut b2 = ScheduleBuilder::new(4);
        b2.round(vec![t(1, 2)]).unwrap();
        b2.round(vec![t(2, 3)]).unwrap();
        let s = b1.build().chain(b2.build()).unwrap();
        assert_eq!(s.rounds(), 3);
        assert_eq!(s.messages(), 3);
    }

    #[test]
    fn chain_size_mismatch_rejected() {
        let a = ScheduleBuilder::new(4).build();
        let b = ScheduleBuilder::new(5).build();
        assert!(matches!(a.chain(b), Err(ModelError::SizeMismatch { .. })));
    }

    #[test]
    fn empty_compute_block_elided() {
        let mut b = ScheduleBuilder::new(2);
        b.compute(vec![]).unwrap();
        assert!(b.build().steps().is_empty());
    }
}
