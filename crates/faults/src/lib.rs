//! # `lowband-faults` — deterministic fault injection for the executors
//!
//! The paper's model assumes a perfectly reliable round-synchronous
//! network: every message sent is delivered and every node survives all
//! rounds. Production distributed runs do not get that luxury, so the
//! executors accept a **fault hook** — in exactly the style of
//! `lowband-trace::Tracer` — through which a deterministic, seed-driven
//! [`FaultPlan`] injects three failure modes at round boundaries:
//!
//! * **message drop** — a sent value silently never arrives;
//! * **value corruption** — a sent value arrives perturbed
//!   (`v.corrupted()`, i.e. `v + 1` by default);
//! * **node crash** — a node loses its entire store at a round boundary
//!   (crash/restart with empty memory).
//!
//! The hook is a **monomorphized** trait ([`FaultHook`]): the default
//! [`NoopFaults`] has [`FaultHook::ENABLED`]` = false` and empty
//! `#[inline(always)]` bodies, so executor hot loops guarded by
//! `if F::ENABLED` compile to exactly the fault-free machine code.
//!
//! ## Determinism contract
//!
//! Fault decisions are keyed on **(round, sending node)** — never on the
//! position of a message inside a round. The linked executor re-sorts each
//! round's transfers by destination, so per-round message *order* differs
//! across executor backends; (round, node) keys are order-independent,
//! which makes the injected-fault log of a seeded plan identical across
//! the hash-map, sharded-parallel and linked executors (asserted by the
//! cross-executor fault suite). Every fault in a plan is **one-shot**: it
//! fires at most once, so a recovery retry that replays the same rounds
//! does not re-trip the same fault and bounded retry budgets terminate.

use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// What happens to one message in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tamper {
    /// Deliver unchanged (the overwhelmingly common case).
    None,
    /// The message is lost: nothing is delivered.
    Drop,
    /// The payload is perturbed before delivery.
    Corrupt,
}

/// A sink of fault decisions, monomorphized into the executors.
///
/// Implementations are queried at two points of each communication round:
/// once per round for a crash ([`FaultHook::crash`]) and once per message
/// for in-flight tampering ([`FaultHook::tamper`]). Call sites guard every
/// query — and all checksum bookkeeping — behind `if F::ENABLED`, so the
/// no-op hook costs nothing.
pub trait FaultHook {
    /// `false` only for hooks that never inject (the no-op hook): lets the
    /// executors skip even the cost of *computing* round checksums.
    const ENABLED: bool = true;

    /// Called once at the boundary of `round` (global index, resumes
    /// included). Returning `Some(node)` crashes that node: the executor
    /// wipes its store and aborts the run with
    /// `ModelError::NodeCrashed`.
    fn crash(&mut self, round: usize) -> Option<u32>;

    /// Called once per message of `round` sent by `src`. Anything other
    /// than [`Tamper::None`] tampers with the message in flight.
    fn tamper(&mut self, round: usize, src: u32) -> Tamper;
}

/// The zero-cost hook: never injects, [`FaultHook::ENABLED`] is `false`,
/// every body is empty and `#[inline(always)]` — executors instantiated
/// with it compile to the same machine code as before the fault layer.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopFaults;

impl FaultHook for NoopFaults {
    const ENABLED: bool = false;

    #[inline(always)]
    fn crash(&mut self, _round: usize) -> Option<u32> {
        None
    }

    #[inline(always)]
    fn tamper(&mut self, _round: usize, _src: u32) -> Tamper {
        Tamper::None
    }
}

/// `&mut F` forwards, so one plan can be lent across an executor pipeline.
impl<F: FaultHook + ?Sized> FaultHook for &mut F {
    const ENABLED: bool = true;

    #[inline]
    fn crash(&mut self, round: usize) -> Option<u32> {
        (**self).crash(round)
    }

    #[inline]
    fn tamper(&mut self, round: usize, src: u32) -> Tamper {
        (**self).tamper(round, src)
    }
}

/// The three injectable failure modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Lose one message sent by `node` in `round`.
    Drop,
    /// Corrupt one message sent by `node` in `round`.
    Corrupt,
    /// Wipe `node`'s store at the boundary of `round`.
    Crash,
}

impl FaultKind {
    /// Stable lowercase name, used in post-mortem dumps and artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
        }
    }
}

/// One planned (or fired) fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Global round index the fault targets.
    pub round: usize,
    /// Victim node: the sender for [`FaultKind::Drop`] /
    /// [`FaultKind::Corrupt`], the crashed node for [`FaultKind::Crash`].
    pub node: u32,
    /// Failure mode.
    pub kind: FaultKind,
}

impl Fault {
    /// One-line description (`"corrupt@r12 node 3"`), the form the flight
    /// recorder's post-mortem dump and the recovery artifacts use.
    pub fn describe(&self) -> String {
        format!("{}@r{} node {}", self.kind.as_str(), self.round, self.node)
    }
}

/// Render a fault log as one comma-separated line for a post-mortem
/// dump's `otherData` (empty log ⇒ `"none"`).
pub fn describe_log(log: &[Fault]) -> String {
    if log.is_empty() {
        return "none".to_string();
    }
    log.iter()
        .map(Fault::describe)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Per-round fault *rates* plus a seed — the reproducible description of a
/// failure regime. [`FaultSpec::plan`] expands it into a concrete
/// [`FaultPlan`] once the schedule's round count is known.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// PRNG seed; the entire plan is a pure function of
    /// `(seed, rates, rounds, n)`.
    pub seed: u64,
    /// Per-round probability of one message drop.
    pub drop_rate: f64,
    /// Per-round probability of one value corruption.
    pub corrupt_rate: f64,
    /// Per-round probability of one node crash.
    pub crash_rate: f64,
}

impl FaultSpec {
    /// A spec that never injects anything (useful as a baseline).
    pub fn none(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            crash_rate: 0.0,
        }
    }

    /// Expand into a concrete plan for a schedule of `rounds` rounds on a
    /// network of `n` nodes. Deterministic: same inputs ⇒ same plan,
    /// bit for bit.
    pub fn plan(&self, rounds: usize, n: usize) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut faults = Vec::new();
        let node_span = n.max(1) as u32;
        for round in 0..rounds {
            // Draw in a fixed kind order so the stream is stable.
            for (rate, kind) in [
                (self.drop_rate, FaultKind::Drop),
                (self.corrupt_rate, FaultKind::Corrupt),
                (self.crash_rate, FaultKind::Crash),
            ] {
                if rate > 0.0 && rng.gen_bool(rate.min(1.0)) {
                    faults.push(Fault {
                        round,
                        node: rng.gen_range(0..node_span),
                        kind,
                    });
                }
            }
        }
        FaultPlan::new(faults)
    }
}

/// A concrete, deterministic fault schedule implementing [`FaultHook`].
///
/// Every fault is one-shot: once fired it never fires again, even if the
/// executor replays its round after a checkpoint restore. [`FaultPlan::log`]
/// reports the fired faults in plan order — an executor-independent record
/// (see the module docs for why decisions key on `(round, node)`).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    fired: Vec<bool>,
    /// Round → indices into `faults`, so per-message queries don't scan
    /// the whole plan.
    by_round: HashMap<usize, Vec<usize>>,
}

impl FaultPlan {
    /// Build a plan from an explicit fault list (kept in the given order;
    /// within one round, earlier faults fire first).
    pub fn new(faults: Vec<Fault>) -> FaultPlan {
        let mut by_round: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, f) in faults.iter().enumerate() {
            by_round.entry(f.round).or_default().push(idx);
        }
        let fired = vec![false; faults.len()];
        FaultPlan {
            faults,
            fired,
            by_round,
        }
    }

    /// The planned faults, fired or not, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults that actually fired, in plan order. This is the
    /// reproducibility artifact: identical across repeated runs with the
    /// same seed and across executor backends.
    pub fn log(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.fired)
            .filter(|(_, &fired)| fired)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.fired.iter().filter(|&&f| f).count()
    }

    /// Re-arm every fault (clear the fired flags), so the same plan can
    /// drive a fresh run from scratch.
    pub fn rearm(&mut self) {
        self.fired.fill(false);
    }

    fn fire_matching(&mut self, round: usize, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let indices = self.by_round.get(&round)?;
        for &idx in indices {
            if !self.fired[idx] && pred(&self.faults[idx]) {
                self.fired[idx] = true;
                return Some(self.faults[idx]);
            }
        }
        None
    }
}

impl FaultHook for FaultPlan {
    fn crash(&mut self, round: usize) -> Option<u32> {
        self.fire_matching(round, |f| f.kind == FaultKind::Crash)
            .map(|f| f.node)
    }

    fn tamper(&mut self, round: usize, src: u32) -> Tamper {
        match self.fire_matching(round, |f| {
            f.node == src && matches!(f.kind, FaultKind::Drop | FaultKind::Corrupt)
        }) {
            Some(Fault {
                kind: FaultKind::Drop,
                ..
            }) => Tamper::Drop,
            Some(_) => Tamper::Corrupt,
            None => Tamper::None,
        }
    }
}

/// SplitMix64 step: a cheap bijective mixer. The executors fold each
/// payload digest through this before summing, so the per-round rolling
/// checksum (a commutative `wrapping_add` of mixed digests — order
/// independence is what lets sequential, sharded and linked executors
/// agree) detects single-value changes with overwhelming probability.
/// The golden-gamma pre-increment keeps zero from being a fixed point:
/// without it, dropping a digest-0 payload would shift neither sum.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_statically_disabled() {
        const {
            assert!(!NoopFaults::ENABLED);
            assert!(<&mut FaultPlan as FaultHook>::ENABLED);
        }
    }

    #[test]
    fn spec_expansion_is_deterministic() {
        let spec = FaultSpec {
            seed: 42,
            drop_rate: 0.3,
            corrupt_rate: 0.2,
            crash_rate: 0.1,
        };
        let a = spec.plan(200, 16);
        let b = spec.plan(200, 16);
        assert_eq!(a.faults(), b.faults());
        assert!(!a.is_empty(), "rates this high must yield faults");
        let other = FaultSpec { seed: 43, ..spec }.plan(200, 16);
        assert_ne!(a.faults(), other.faults(), "different seed, different plan");
    }

    #[test]
    fn faults_are_one_shot() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                round: 3,
                node: 1,
                kind: FaultKind::Crash,
            },
            Fault {
                round: 5,
                node: 2,
                kind: FaultKind::Drop,
            },
        ]);
        assert_eq!(plan.crash(3), Some(1));
        assert_eq!(plan.crash(3), None, "fired faults never refire");
        assert_eq!(plan.tamper(5, 2), Tamper::Drop);
        assert_eq!(plan.tamper(5, 2), Tamper::None);
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.log().len(), 2);
        plan.rearm();
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.crash(3), Some(1), "rearmed faults fire again");
    }

    #[test]
    fn tamper_matches_sender_and_round_only() {
        let mut plan = FaultPlan::new(vec![Fault {
            round: 7,
            node: 4,
            kind: FaultKind::Corrupt,
        }]);
        assert_eq!(plan.tamper(7, 3), Tamper::None, "wrong sender");
        assert_eq!(plan.tamper(6, 4), Tamper::None, "wrong round");
        assert_eq!(plan.tamper(7, 4), Tamper::Corrupt);
    }

    #[test]
    fn crash_ignores_tamper_faults_and_vice_versa() {
        let mut plan = FaultPlan::new(vec![Fault {
            round: 1,
            node: 0,
            kind: FaultKind::Drop,
        }]);
        assert_eq!(plan.crash(1), None, "a drop is not a crash");
        assert_eq!(plan.tamper(1, 0), Tamper::Drop);
    }

    #[test]
    fn mix64_is_injective_on_samples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
        assert_ne!(mix64(0), 0, "zero must not be a fixed point");
    }

    #[test]
    fn log_is_plan_ordered() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                round: 2,
                node: 0,
                kind: FaultKind::Drop,
            },
            Fault {
                round: 1,
                node: 1,
                kind: FaultKind::Crash,
            },
        ]);
        // Fire out of plan order.
        assert_eq!(plan.crash(1), Some(1));
        assert_eq!(plan.tamper(2, 0), Tamper::Drop);
        let log = plan.log();
        assert_eq!(log[0].round, 2, "log order follows the plan, not firing");
        assert_eq!(log[1].round, 1);
    }
}
